package overlay

import (
	"sort"

	"repro/internal/proximity"
)

// peerRecord is what a tracker knows about a zone member.
type peerRecord struct {
	res        Resources
	lastUpdate float64
	busy       bool
}

// Tracker manages one zone of peers and a slice of the tracker line
// (§III-A). Trackers keep a neighbour set N with the closest trackers
// on each IP side, maintain connections with the two nearest, detect
// neighbour crashes and repair the line.
type Tracker struct {
	sys    *System
	addr   proximity.Addr
	server proximity.Addr

	n *neighborSet
	// connLeft / connRight are the two maintained connections
	// ("each tracker maintains connection with the closest tracker on
	// right side and the closest tracker on left side").
	connLeft, connRight proximity.Addr

	peers map[proximity.Addr]*peerRecord

	// JoinForwards counts how many MsgTrackerJoin/MsgPeerJoin this
	// tracker forwarded (routing cost metric).
	JoinForwards int

	stopped bool
}

// NewTracker creates and registers a tracker actor. The tracker does
// not join the line automatically: call BootstrapNeighbors for
// administrator-installed core trackers, or Join for volunteers.
func NewTracker(sys *System, addr, server proximity.Addr) (*Tracker, error) {
	t := &Tracker{
		sys:    sys,
		addr:   addr,
		server: server,
		n:      newNeighborSet(addr, sys.cfg.NSize),
		peers:  make(map[proximity.Addr]*peerRecord),
	}
	if err := sys.Register(t); err != nil {
		return nil, err
	}
	t.schedulePeerSweep()
	t.scheduleStats()
	return t, nil
}

// Addr implements Actor.
func (t *Tracker) Addr() proximity.Addr { return t.addr }

// Neighbors returns the current neighbour set, left then right.
func (t *Tracker) Neighbors() []proximity.Addr { return t.n.all() }

// Connections returns the two maintained line connections (0 = none).
func (t *Tracker) Connections() (left, right proximity.Addr) { return t.connLeft, t.connRight }

// ZoneSize returns the number of peers in this tracker's zone.
func (t *Tracker) ZoneSize() int { return len(t.peers) }

// ZonePeers returns the zone's peers sorted by address.
func (t *Tracker) ZonePeers() []proximity.Addr {
	m := make(map[proximity.Addr]bool, len(t.peers))
	for a := range t.peers {
		m[a] = true
	}
	return sortedAddrs(m)
}

// FreePeers returns non-busy zone peers sorted by address.
func (t *Tracker) FreePeers() []proximity.Addr {
	m := make(map[proximity.Addr]bool)
	for a, r := range t.peers {
		if !r.busy && !r.res.Busy {
			m[a] = true
		}
	}
	return sortedAddrs(m)
}

// BootstrapNeighbors wires the administrator-installed core trackers
// directly (they are configured, not joined; §III-A.3).
func (t *Tracker) BootstrapNeighbors(line []proximity.Addr) {
	for _, a := range line {
		t.n.insert(a)
	}
	t.refreshConnections()
}

// Join sends the join message toward the closest tracker in the local
// tracker list (§III-A.4).
func (t *Tracker) Join(localList []proximity.Addr) {
	if len(localList) == 0 {
		// No contacts: ask the server for a fresh list.
		t.sys.Send(&Message{Kind: MsgGetTrackers, From: t.addr, To: t.server})
		return
	}
	cands := append([]proximity.Addr(nil), localList...)
	proximity.SortByProximity(t.addr, cands)
	t.sys.Send(&Message{Kind: MsgTrackerJoin, From: t.addr, To: cands[0], Subject: t.addr})
}

func (t *Tracker) refreshConnections() {
	t.connLeft = t.n.closestOn(-1)
	t.connRight = t.n.closestOn(+1)
}

// Handle implements Actor.
func (t *Tracker) Handle(m *Message) {
	switch m.Kind {
	case MsgTrackerList:
		// Bootstrap answer from the server: resume joining.
		if len(m.Addrs) > 0 {
			t.Join(m.Addrs)
		}
	case MsgTrackerJoin:
		t.handleTrackerJoin(m)
	case MsgTrackerWelcome:
		// We are the new tracker: build N from the closest tracker's
		// set, then connect to the nearest member on each side.
		for _, a := range m.Addrs {
			t.n.insert(a)
		}
		t.n.insert(m.From)
		t.refreshConnections()
		// Register with the server for bookkeeping.
		t.sys.Send(&Message{Kind: MsgStatsReport, From: t.addr, To: t.server})
	case MsgNeighborAdd:
		t.addNeighbor(m.Subject)
	case MsgNeighborRemove:
		t.n.remove(m.Subject)
		t.refreshConnections()
	case MsgTrackerDead:
		t.handleTrackerDead(m)
	case MsgRelink:
		// Surviving neighbour sends its farthest trackers so we can
		// refill our set (§III-A.5).
		for _, a := range m.Addrs {
			t.n.insert(a)
		}
		t.refreshConnections()
	case MsgPeerJoin:
		t.handlePeerJoin(m)
	case MsgPeerInfo:
		if r, ok := t.peers[m.From]; ok {
			r.res = m.Res
			r.lastUpdate = t.sys.Now()
		}
	case MsgStateUpdate:
		if r, ok := t.peers[m.From]; ok {
			r.lastUpdate = t.sys.Now()
			r.res.Busy = m.Res.Busy
			t.sys.Send(&Message{Kind: MsgStateAck, From: t.addr, To: m.From})
		} else {
			// Unknown peer (e.g. zone moved): treat as a join.
			t.handlePeerJoin(&Message{Kind: MsgPeerJoin, From: m.From, To: t.addr, Subject: m.From, Res: m.Res})
		}
	case MsgBusyNotice:
		if r, ok := t.peers[m.From]; ok {
			r.busy = true
		}
	case MsgRelease:
		if r, ok := t.peers[m.Subject]; ok {
			r.busy = false
		}
	case MsgPeerRequest:
		t.handlePeerRequest(m)
	case MsgMoreTrackersReq:
		// Submitter wants trackers on our far side relative to it
		// (§III-B: "these two farthest trackers send to submitter
		// trackers in their tracker list in other side with submitter").
		side := +1
		if m.From > t.addr {
			side = -1
		}
		t.sys.Send(&Message{
			Kind: MsgMoreTrackers, From: t.addr, To: m.From,
			Addrs: t.n.sideMembers(side), Token: m.Token,
		})
	}
}

// handleTrackerJoin routes a join to the closest tracker or welcomes
// the newcomer if we are it (§III-A.4).
func (t *Tracker) handleTrackerJoin(m *Message) {
	newcomer := m.Subject
	closest := t.n.closestTo(newcomer)
	if closest != t.addr {
		t.JoinForwards++
		t.sys.Send(&Message{Kind: MsgTrackerJoin, From: t.addr, To: closest, Subject: newcomer})
		return
	}
	// We are the closest tracker in the overlay.
	// 1. Inform all trackers in N about the newcomer.
	for _, a := range t.n.all() {
		t.sys.Send(&Message{Kind: MsgNeighborAdd, From: t.addr, To: a, Subject: newcomer})
	}
	t.sys.Send(&Message{Kind: MsgNeighborAdd, From: t.addr, To: t.server, Subject: newcomer})
	// 2. Send our set (plus ourselves) to the newcomer.
	welcome := append(t.n.all(), t.addr)
	t.sys.Send(&Message{Kind: MsgTrackerWelcome, From: t.addr, To: newcomer, Addrs: welcome})
	// 3. Insert the newcomer, dropping the farthest member on the same
	// side if the side is full.
	t.addNeighbor(newcomer)
}

func (t *Tracker) addNeighbor(a proximity.Addr) {
	t.n.insert(a)
	t.refreshConnections()
}

// handleTrackerDead repairs the line after a neighbour crash
// (§III-A.5). m.Subject is the dead tracker; m.Addrs carries the
// sender's members on the far side so we can refill.
func (t *Tracker) handleTrackerDead(m *Message) {
	t.n.remove(m.Subject)
	for _, a := range m.Addrs {
		t.n.insert(a)
	}
	t.refreshConnections()
}

// NotifyNeighborCrash is invoked by the failure detector when one of
// the two maintained connections breaks. side is -1 if the dead
// tracker was on our left, +1 for right.
func (t *Tracker) NotifyNeighborCrash(dead proximity.Addr, side int) {
	t.n.remove(dead)
	// Inform trackers along our opposite-of-dead side plus the server;
	// ship our members on the dead side so they can rebuild (§III-A.5:
	// T3 informs left side about T4's death and sends its right-side
	// list).
	informSide := -side
	carry := t.n.sideMembers(side)
	for _, a := range t.n.sideMembers(informSide) {
		t.sys.Send(&Message{Kind: MsgTrackerDead, From: t.addr, To: a, Subject: dead, Addrs: carry})
	}
	t.sys.Send(&Message{Kind: MsgTrackerDead, From: t.addr, To: t.server, Subject: dead})
	t.refreshConnections()
	// Establish the new connection across the hole and exchange
	// farthest trackers with the survivor.
	survivor := t.n.closestOn(side)
	if survivor != 0 {
		far := t.n.sideMembers(-side)
		t.sys.Send(&Message{Kind: MsgRelink, From: t.addr, To: survivor, Addrs: far})
	}
}

// handlePeerJoin adds a peer to the zone or forwards to a closer
// tracker (§III-A.6).
func (t *Tracker) handlePeerJoin(m *Message) {
	newcomer := m.Subject
	closest := t.n.closestTo(newcomer)
	if closest != t.addr {
		t.JoinForwards++
		t.sys.Send(&Message{Kind: MsgPeerJoin, From: t.addr, To: closest, Subject: newcomer, Res: m.Res})
		return
	}
	t.peers[newcomer] = &peerRecord{res: m.Res, lastUpdate: t.sys.Now()}
	accept := append(t.n.all(), t.addr)
	t.sys.Send(&Message{Kind: MsgPeerAccept, From: t.addr, To: newcomer, Addrs: accept})
}

// handlePeerRequest filters free peers matching the request and sends
// them back (§III-B).
func (t *Tracker) handlePeerRequest(m *Message) {
	var match []proximity.Addr
	for a, r := range t.peers {
		if r.busy || r.res.Busy || a == m.From {
			continue
		}
		if m.Res.CPUFlops > 0 && r.res.CPUFlops < m.Res.CPUFlops {
			continue
		}
		if m.Res.MemoryMB > 0 && r.res.MemoryMB < m.Res.MemoryMB {
			continue
		}
		match = append(match, a)
	}
	sort.Slice(match, func(i, j int) bool { return match[i] < match[j] })
	if m.Count > 0 && len(match) > m.Count {
		match = match[:m.Count]
	}
	t.sys.Send(&Message{
		Kind: MsgPeerCandidates, From: t.addr, To: m.From,
		Addrs: match, Token: m.Token,
	})
}

// schedulePeerSweep periodically drops peers whose updates stopped for
// longer than T (§III-A.7).
func (t *Tracker) schedulePeerSweep() {
	t.sys.sim.Schedule(t.sys.cfg.TimeoutT, func() {
		if t.stopped || !t.sys.Alive(t.addr) {
			return
		}
		now := t.sys.Now()
		for a, r := range t.peers {
			if now-r.lastUpdate > t.sys.cfg.TimeoutT {
				delete(t.peers, a)
			}
		}
		t.schedulePeerSweep()
	})
}

// scheduleStats periodically reports zone statistics to the server.
func (t *Tracker) scheduleStats() {
	t.sys.sim.Schedule(t.sys.cfg.StatsInterval, func() {
		if t.stopped || !t.sys.Alive(t.addr) {
			return
		}
		addrs := t.ZonePeers()
		t.sys.Send(&Message{Kind: MsgStatsReport, From: t.addr, To: t.server, Addrs: addrs})
		t.scheduleStats()
	})
}

// Stop halts periodic activity (graceful shutdown in tests).
func (t *Tracker) Stop() { t.stopped = true }
