package overlay

import (
	"testing"

	"repro/internal/proximity"
)

func TestPeerJoinViaServerBootstrap(t *testing.T) {
	sim, sys := newSys(t)
	core := coreAddrs(3)
	_, _, err := Bootstrap(sys, addr(serverIP), core)
	if err != nil {
		t.Fatal(err)
	}
	// Peer with an empty local tracker list: must bootstrap through
	// the server ("when peers have no contact to join overlay network,
	// they contact the server to receive a list of closest connected
	// trackers").
	p, err := NewPeer(sys, proximity.Addr(uint32(core[2])+4), addr(serverIP), Resources{CPUFlops: 1e9})
	if err != nil {
		t.Fatal(err)
	}
	p.Join(nil)
	sim.RunUntil(10)
	if !p.Joined() {
		t.Fatal("peer did not join via server bootstrap")
	}
	if p.Tracker() != core[2] {
		t.Fatalf("peer landed in zone %v, want closest %v", p.Tracker(), core[2])
	}
	if sys.MsgCount[MsgGetTrackers] == 0 || sys.MsgCount[MsgTrackerList] == 0 {
		t.Fatal("server bootstrap messages missing")
	}
}

func TestServerLearnsPeersFromStats(t *testing.T) {
	sim, sys := newSys(t)
	core := coreAddrs(2)
	srv, _, err := Bootstrap(sys, addr(serverIP), core)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		p, err := NewPeer(sys, proximity.Addr(uint32(core[0])+uint32(i)+2), addr(serverIP), Resources{CPUFlops: 2e9})
		if err != nil {
			t.Fatal(err)
		}
		p.Join(core)
	}
	sim.RunUntil(1.5 * sys.cfg.StatsInterval)
	if len(srv.KnownPeers) != 3 {
		t.Fatalf("server knows %d peers, want 3", len(srv.KnownPeers))
	}
}

func TestServerTrackerListTracksJoinsAndDeaths(t *testing.T) {
	sim, sys := newSys(t)
	core := coreAddrs(3)
	srv, trackers, err := Bootstrap(sys, addr(serverIP), core)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(srv.Trackers()); got != 3 {
		t.Fatalf("server trackers = %d", got)
	}
	// A volunteer joins: the closest tracker informs the server.
	nt, err := NewTracker(sys, proximity.Addr(uint32(core[1])+0x100), addr(serverIP))
	if err != nil {
		t.Fatal(err)
	}
	nt.Join(core)
	sim.RunUntil(10)
	if got := len(srv.Trackers()); got != 4 {
		t.Fatalf("server trackers after join = %d, want 4", got)
	}
	// A crash removes it.
	CrashTracker(sys, trackers[0])
	sim.RunUntil(60)
	found := false
	for _, a := range srv.Trackers() {
		if a == trackers[0].Addr() {
			found = true
		}
	}
	if found {
		t.Fatal("server still lists the crashed tracker")
	}
}
