// Package overlay implements the decentralized P2PDC topology manager
// of paper §III-A: a permanent server, a line topology of trackers
// ordered by IP with symmetric neighbour sets N, and peers grouped in
// zones, one zone per tracker. Trackers and peers join by proximity
// forwarding (longest-common-IP-prefix metric), trackers repair the
// line when a neighbour crashes, and peers fail over to a neighbour
// zone when their tracker dies.
//
// Entities are deterministic event-driven actors on the internal/des
// kernel; a Transport delivers messages with per-pair latency, so the
// whole control plane is simulated network-accurately without
// goroutines.
package overlay

import (
	"repro/internal/proximity"
)

// MsgKind enumerates control-plane message types.
type MsgKind int

// Control-plane message kinds (paper §III-A.4 through §III-A.7 and
// §III-B).
const (
	// Bootstrap.
	MsgGetTrackers MsgKind = iota // node -> server: request tracker list
	MsgTrackerList                // server -> node: closest connected trackers

	// Tracker join (§III-A.4).
	MsgTrackerJoin     // new tracker -> tracker (forwarded to closest)
	MsgTrackerWelcome  // closest tracker -> new tracker: here is my N
	MsgNeighborAdd     // closest tracker -> members of N: new tracker exists
	MsgNeighborRemove  // repair: drop a tracker from N
	MsgNeighborListing // repair: replacement candidates for rebuilt N

	// Tracker failure repair (§III-A.5).
	MsgTrackerDead // neighbour -> N members + server: tracker crashed
	MsgRelink      // surviving neighbours exchange farthest trackers

	// Peer membership (§III-A.6, §III-A.7).
	MsgPeerJoin    // new peer -> tracker (forwarded to closest)
	MsgPeerAccept  // tracker -> peer: joined zone, here is my N
	MsgPeerInfo    // peer -> tracker: resource description
	MsgStateUpdate // peer -> tracker: periodic usage state
	MsgStateAck    // tracker -> peer: answer to state update

	// Statistics (§III-A.1).
	MsgStatsReport // tracker -> server: periodic zone statistics

	// Peer collection for a task (§III-B).
	MsgPeerRequest     // submitter -> tracker: need peers matching req
	MsgPeerCandidates  // tracker -> submitter: matching free peers
	MsgMoreTrackersReq // submitter -> farthest tracker: expand search
	MsgMoreTrackers    // farthest tracker -> submitter: its far side list
	MsgReserve         // submitter/coordinator -> peer: reserve for task
	MsgReserveAck      // peer -> reserver
	MsgBusyNotice      // peer -> its tracker: not free any more
	MsgRelease         // task end: peer free again

	// Hierarchical task allocation (§III-C).
	MsgGroupAssign // submitter -> coordinator: your group's peer list
	MsgGroupReady  // coordinator -> submitter: all members reserved
	MsgSubtask     // submitter -> coordinator -> peer: subtask data
	MsgResult      // peer -> coordinator -> submitter: subtask result
)

var msgKindNames = map[MsgKind]string{
	MsgGetTrackers: "GetTrackers", MsgTrackerList: "TrackerList",
	MsgTrackerJoin: "TrackerJoin", MsgTrackerWelcome: "TrackerWelcome",
	MsgNeighborAdd: "NeighborAdd", MsgNeighborRemove: "NeighborRemove",
	MsgNeighborListing: "NeighborListing",
	MsgTrackerDead:     "TrackerDead", MsgRelink: "Relink",
	MsgPeerJoin: "PeerJoin", MsgPeerAccept: "PeerAccept",
	MsgPeerInfo: "PeerInfo", MsgStateUpdate: "StateUpdate",
	MsgStateAck:    "StateAck",
	MsgStatsReport: "StatsReport",
	MsgPeerRequest: "PeerRequest", MsgPeerCandidates: "PeerCandidates",
	MsgMoreTrackersReq: "MoreTrackersReq", MsgMoreTrackers: "MoreTrackers",
	MsgReserve: "Reserve", MsgReserveAck: "ReserveAck",
	MsgBusyNotice: "BusyNotice", MsgRelease: "Release",
	MsgGroupAssign: "GroupAssign", MsgGroupReady: "GroupReady",
	MsgSubtask: "Subtask", MsgResult: "Result",
}

func (k MsgKind) String() string {
	if s, ok := msgKindNames[k]; ok {
		return s
	}
	return "MsgKind(?)"
}

// Resources describes what a peer publishes to its tracker
// (paper §III-A.1: processor, memory, hard disk, usage state).
type Resources struct {
	CPUFlops float64 // processor speed
	MemoryMB int
	DiskGB   int
	Busy     bool // current usage state
}

// Message is a control-plane datagram.
type Message struct {
	Kind MsgKind
	From proximity.Addr
	To   proximity.Addr

	// Subject is the node the message talks about (joining tracker,
	// dead tracker, reserved peer...).
	Subject proximity.Addr
	// Addrs carries tracker or peer lists.
	Addrs []proximity.Addr
	// Res carries peer resource descriptions.
	Res Resources
	// Count carries small integers (peers wanted, etc.).
	Count int
	// Token identifies a collection/allocation round.
	Token int
	// Side is -1 for the smaller-IP side, +1 for the larger-IP side.
	Side int
	// Bytes is the on-wire size; 0 means "default control size".
	Bytes float64
}

// Transport delivers messages between actors with simulated latency.
type Transport interface {
	// Send delivers m (eventually). Implementations must be
	// deterministic.
	Send(m *Message)
	// Now returns virtual time (seconds).
	Now() float64
}
