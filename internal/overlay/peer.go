package overlay

import (
	"repro/internal/proximity"
)

// Peer is a donor of computational resources (§III-A.1). Peers join a
// zone through the closest tracker, publish their resources, push
// periodic state updates, and fail over to a neighbour zone when the
// tracker stops answering (§III-A.7).
type Peer struct {
	sys    *System
	addr   proximity.Addr
	server proximity.Addr

	res Resources

	// trackerList is the locally stored list, refreshed on join.
	trackerList []proximity.Addr
	tracker     proximity.Addr // current zone tracker, 0 if none
	joined      bool

	// Failover accounting.
	pendingAcks int
	lastAck     float64
	Rejoins     int

	// Reservation state (§III-B): a reserved peer tells its tracker it
	// is busy and acks the reserver.
	reservedBy proximity.Addr

	// OnReserve, if set, is called when the peer is reserved for a
	// computation (used by the allocation layer).
	OnReserve func(by proximity.Addr, token int)
	// OnMessage, if set, receives any message the peer logic does not
	// consume (application-level extension hook).
	OnMessage func(m *Message)

	stopped bool
}

// NewPeer creates and registers a peer actor with the given resources.
func NewPeer(sys *System, addr, server proximity.Addr, res Resources) (*Peer, error) {
	p := &Peer{sys: sys, addr: addr, server: server, res: res}
	if err := sys.Register(p); err != nil {
		return nil, err
	}
	return p, nil
}

// Addr implements Actor.
func (p *Peer) Addr() proximity.Addr { return p.addr }

// Tracker returns the current zone tracker (0 before joining).
func (p *Peer) Tracker() proximity.Addr { return p.tracker }

// Joined reports whether the peer has been accepted into a zone.
func (p *Peer) Joined() bool { return p.joined }

// TrackerList returns the locally stored tracker list.
func (p *Peer) TrackerList() []proximity.Addr {
	return append([]proximity.Addr(nil), p.trackerList...)
}

// Resources returns the published resource description.
func (p *Peer) Resources() Resources { return p.res }

// ReservedBy returns the reserver address (0 when free).
func (p *Peer) ReservedBy() proximity.Addr { return p.reservedBy }

// Join starts the join protocol using the locally stored tracker list
// (set at install time, §III-A.3); with an empty list the peer asks
// the server.
func (p *Peer) Join(localList []proximity.Addr) {
	p.trackerList = append([]proximity.Addr(nil), localList...)
	if len(p.trackerList) == 0 {
		p.sys.Send(&Message{Kind: MsgGetTrackers, From: p.addr, To: p.server})
		return
	}
	cands := append([]proximity.Addr(nil), p.trackerList...)
	proximity.SortByProximity(p.addr, cands)
	p.sys.Send(&Message{Kind: MsgPeerJoin, From: p.addr, To: cands[0], Subject: p.addr, Res: p.res})
}

// Handle implements Actor.
func (p *Peer) Handle(m *Message) {
	switch m.Kind {
	case MsgTrackerList:
		if len(m.Addrs) > 0 {
			p.Join(m.Addrs)
		}
	case MsgPeerAccept:
		p.tracker = m.From
		p.joined = true
		p.pendingAcks = 0
		p.lastAck = p.sys.Now()
		// "New peer updates its tracker list" with the zone tracker's N.
		p.trackerList = mergeAddrs(p.trackerList, append(m.Addrs, m.From))
		// Publish resources, then start periodic updates.
		p.sys.Send(&Message{Kind: MsgPeerInfo, From: p.addr, To: p.tracker, Res: p.res})
		p.scheduleUpdate()
	case MsgStateAck:
		if m.From == p.tracker {
			p.pendingAcks = 0
			p.lastAck = p.sys.Now()
		}
	case MsgReserve:
		if p.reservedBy != 0 && p.reservedBy != m.From {
			// Already taken: no ack; the reserver will pick someone else.
			return
		}
		p.reservedBy = m.From
		p.res.Busy = true
		p.sys.Send(&Message{Kind: MsgReserveAck, From: p.addr, To: m.From, Token: m.Token})
		if p.tracker != 0 {
			p.sys.Send(&Message{Kind: MsgBusyNotice, From: p.addr, To: p.tracker})
		}
		if p.OnReserve != nil {
			p.OnReserve(m.From, m.Token)
		}
	case MsgRelease:
		p.reservedBy = 0
		p.res.Busy = false
		if p.tracker != 0 {
			p.sys.Send(&Message{Kind: MsgRelease, From: p.addr, To: p.tracker, Subject: p.addr})
		}
	default:
		if p.OnMessage != nil {
			p.OnMessage(m)
		}
	}
}

// scheduleUpdate pushes the next periodic state update and checks for
// tracker-ack timeout (§III-A.7).
func (p *Peer) scheduleUpdate() {
	interval := p.sys.cfg.PeerUpdateInterval
	p.sys.sim.Schedule(interval, func() {
		if p.stopped || !p.sys.Alive(p.addr) || !p.joined {
			return
		}
		// Timeout check first: if the tracker has not acked for T,
		// consider it dead and rejoin through the local tracker list.
		if p.pendingAcks > 0 && p.sys.Now()-p.lastAck > p.sys.cfg.TimeoutT {
			p.failover()
			return
		}
		p.pendingAcks++
		p.sys.Send(&Message{Kind: MsgStateUpdate, From: p.addr, To: p.tracker, Res: p.res})
		p.scheduleUpdate()
	})
}

// failover drops the dead tracker and rejoins via the closest
// remaining tracker in the local list ("they will join to neighbors
// zone").
func (p *Peer) failover() {
	dead := p.tracker
	p.joined = false
	p.tracker = 0
	p.Rejoins++
	list := p.trackerList[:0]
	for _, a := range p.trackerList {
		if a != dead {
			list = append(list, a)
		}
	}
	p.trackerList = list
	p.Join(p.trackerList)
}

// Stop halts periodic activity.
func (p *Peer) Stop() { p.stopped = true }

// mergeAddrs unions two address lists preserving first-seen order.
func mergeAddrs(a, b []proximity.Addr) []proximity.Addr {
	seen := make(map[proximity.Addr]bool, len(a)+len(b))
	out := make([]proximity.Addr, 0, len(a)+len(b))
	for _, lst := range [][]proximity.Addr{a, b} {
		for _, x := range lst {
			if x != 0 && !seen[x] {
				seen[x] = true
				out = append(out, x)
			}
		}
	}
	return out
}
