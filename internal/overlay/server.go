package overlay

import (
	"sort"

	"repro/internal/proximity"
)

// Server is the permanent contact point of the overlay (§III-A.1). It
// tracks which trackers are connected, hands bootstrap lists of the
// closest trackers to joining nodes, and accumulates the statistics
// trackers report. When the server is down the overlay keeps working;
// trackers buffer their reports (handled tracker-side).
type Server struct {
	sys  *System
	addr proximity.Addr

	trackers map[proximity.Addr]bool
	// Stats: per-node cumulative donated/consumed figures and
	// connection events, as the paper's server "can also store
	// statistic information".
	Reports       int
	KnownPeers    map[proximity.Addr]Resources
	Disconnnected map[proximity.Addr]float64 // tracker -> time of death report
}

// NewServer creates and registers the server actor.
func NewServer(sys *System, addr proximity.Addr) (*Server, error) {
	s := &Server{
		sys:           sys,
		addr:          addr,
		trackers:      make(map[proximity.Addr]bool),
		KnownPeers:    make(map[proximity.Addr]Resources),
		Disconnnected: make(map[proximity.Addr]float64),
	}
	if err := sys.Register(s); err != nil {
		return nil, err
	}
	return s, nil
}

// Addr implements Actor.
func (s *Server) Addr() proximity.Addr { return s.addr }

// RegisterTracker records a tracker as connected (used for the
// administrator-installed core trackers at bootstrap, §III-A.3, and
// when join reports arrive).
func (s *Server) RegisterTracker(t proximity.Addr) { s.trackers[t] = true }

// Trackers returns the connected trackers, sorted by address.
func (s *Server) Trackers() []proximity.Addr { return sortedAddrs(s.trackers) }

// Handle implements Actor.
func (s *Server) Handle(m *Message) {
	switch m.Kind {
	case MsgGetTrackers:
		// Reply with the closest connected trackers to the requester.
		list := s.closestTrackers(m.From, 8)
		s.sys.Send(&Message{Kind: MsgTrackerList, From: s.addr, To: m.From, Addrs: list})
	case MsgStatsReport:
		s.Reports++
		s.trackers[m.From] = true
		for i, p := range m.Addrs {
			_ = i
			s.KnownPeers[p] = m.Res
		}
	case MsgTrackerDead:
		s.Disconnnected[m.Subject] = s.sys.Now()
		delete(s.trackers, m.Subject)
	case MsgNeighborAdd:
		s.trackers[m.Subject] = true
	}
}

func (s *Server) closestTrackers(ref proximity.Addr, k int) []proximity.Addr {
	list := sortedAddrs(s.trackers)
	sort.SliceStable(list, func(i, j int) bool { return proximity.Closer(ref, list[i], list[j]) })
	if len(list) > k {
		list = list[:k]
	}
	return list
}
