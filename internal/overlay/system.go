package overlay

import (
	"fmt"
	"sort"

	"repro/internal/des"
	"repro/internal/proximity"
)

// Config collects protocol timing and sizing parameters.
type Config struct {
	// NSize is the neighbour-set capacity |N|; half the slots hold the
	// closest trackers with larger IPs, half with smaller (§III-A.1).
	NSize int
	// PeerUpdateInterval is how often peers push their usage state.
	PeerUpdateInterval float64
	// TimeoutT is the paper's "time T": a tracker drops a peer whose
	// state updates stop for T, and a peer fails over when acks stop
	// for T (§III-A.7).
	TimeoutT float64
	// FailureDetect is how long a connected neighbour needs to notice a
	// broken tracker connection.
	FailureDetect float64
	// StatsInterval is how often trackers report zone statistics to the
	// server.
	StatsInterval float64
	// CtlBytes is the nominal size of a control message on the wire.
	CtlBytes float64
}

// DefaultConfig returns sane experiment defaults.
func DefaultConfig() Config {
	return Config{
		NSize:              8,
		PeerUpdateInterval: 30,
		TimeoutT:           90,
		FailureDetect:      5,
		StatsInterval:      300,
		CtlBytes:           256,
	}
}

func (c Config) validate() error {
	if c.NSize < 2 || c.NSize%2 != 0 {
		return fmt.Errorf("overlay: NSize must be even and >= 2, got %d", c.NSize)
	}
	if c.PeerUpdateInterval <= 0 || c.TimeoutT <= 0 || c.FailureDetect <= 0 || c.StatsInterval <= 0 {
		return fmt.Errorf("overlay: intervals must be positive")
	}
	return nil
}

// Actor is an event-driven protocol entity.
type Actor interface {
	Addr() proximity.Addr
	Handle(m *Message)
}

// LatencyFunc gives the one-way delay for a message of the given size
// between two overlay addresses.
type LatencyFunc func(from, to proximity.Addr, bytes float64) float64

// System hosts all actors, routes messages with latency, tracks
// liveness and counts traffic. It implements Transport.
type System struct {
	sim     *des.Simulation
	cfg     Config
	actors  map[proximity.Addr]Actor
	dead    map[proximity.Addr]bool
	latency LatencyFunc

	// Traffic accounting for ablation benches.
	MsgCount map[MsgKind]int
	MsgBytes float64
}

// NewSystem creates a system on the given kernel. latency may be nil,
// in which case a flat 1 ms delay is used.
func NewSystem(sim *des.Simulation, cfg Config, latency LatencyFunc) (*System, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if latency == nil {
		latency = func(_, _ proximity.Addr, _ float64) float64 { return 1e-3 }
	}
	return &System{
		sim:      sim,
		cfg:      cfg,
		actors:   make(map[proximity.Addr]Actor),
		dead:     make(map[proximity.Addr]bool),
		latency:  latency,
		MsgCount: make(map[MsgKind]int),
	}, nil
}

// Sim exposes the kernel for scheduling.
func (s *System) Sim() *des.Simulation { return s.sim }

// Config returns the protocol parameters.
func (s *System) Config() Config { return s.cfg }

// Register adds an actor; duplicate addresses are an error.
func (s *System) Register(a Actor) error {
	if _, ok := s.actors[a.Addr()]; ok {
		return fmt.Errorf("overlay: duplicate actor %v", a.Addr())
	}
	s.actors[a.Addr()] = a
	return nil
}

// Actor returns the actor at addr, or nil.
func (s *System) Actor(addr proximity.Addr) Actor { return s.actors[addr] }

// Kill marks an actor crashed: it stops receiving and sending.
func (s *System) Kill(addr proximity.Addr) { s.dead[addr] = true }

// Revive clears the crashed mark (the node must re-join by protocol).
func (s *System) Revive(addr proximity.Addr) { delete(s.dead, addr) }

// Alive reports liveness.
func (s *System) Alive(addr proximity.Addr) bool { return !s.dead[addr] }

// Now implements Transport.
func (s *System) Now() float64 { return s.sim.Now() }

// Send implements Transport: the message is delivered after the pair
// latency unless either endpoint is dead at the respective moment.
func (s *System) Send(m *Message) {
	if s.dead[m.From] {
		return
	}
	s.MsgCount[m.Kind]++
	bytes := m.Bytes
	if bytes == 0 {
		bytes = s.cfg.CtlBytes
	}
	s.MsgBytes += bytes
	d := s.latency(m.From, m.To, bytes)
	s.sim.Schedule(d, func() {
		if s.dead[m.To] {
			return
		}
		if a := s.actors[m.To]; a != nil {
			a.Handle(m)
		}
	})
}

// TotalMessages sums traffic over all kinds.
func (s *System) TotalMessages() int {
	n := 0
	for _, c := range s.MsgCount {
		n += c
	}
	return n
}

// ResetCounters zeroes traffic accounting (between experiment phases).
func (s *System) ResetCounters() {
	s.MsgCount = make(map[MsgKind]int)
	s.MsgBytes = 0
}

// neighborSet maintains a tracker's set N: up to NSize/2 closest
// trackers on each IP side of the owner (§III-A.1).
type neighborSet struct {
	owner proximity.Addr
	half  int
	left  []proximity.Addr // IPs smaller than owner, closest first
	right []proximity.Addr // IPs larger than owner, closest first
}

func newNeighborSet(owner proximity.Addr, size int) *neighborSet {
	return &neighborSet{owner: owner, half: size / 2}
}

// insert adds a tracker, keeping each side trimmed to half capacity
// and ordered closest-first; returns true if the set changed.
func (ns *neighborSet) insert(a proximity.Addr) bool {
	if a == ns.owner || ns.contains(a) {
		return false
	}
	side := &ns.left
	if a > ns.owner {
		side = &ns.right
	}
	*side = append(*side, a)
	proximity.SortByProximity(ns.owner, *side)
	if len(*side) > ns.half {
		*side = (*side)[:ns.half]
		return ns.contains(a)
	}
	return true
}

// remove drops a tracker from the set.
func (ns *neighborSet) remove(a proximity.Addr) {
	ns.left = without(ns.left, a)
	ns.right = without(ns.right, a)
}

func without(xs []proximity.Addr, a proximity.Addr) []proximity.Addr {
	out := xs[:0]
	for _, x := range xs {
		if x != a {
			out = append(out, x)
		}
	}
	return out
}

func (ns *neighborSet) contains(a proximity.Addr) bool {
	for _, x := range ns.left {
		if x == a {
			return true
		}
	}
	for _, x := range ns.right {
		if x == a {
			return true
		}
	}
	return false
}

// all returns every member, left side then right side, closest first.
func (ns *neighborSet) all() []proximity.Addr {
	out := make([]proximity.Addr, 0, len(ns.left)+len(ns.right))
	out = append(out, ns.left...)
	out = append(out, ns.right...)
	return out
}

// sideOf returns -1 if a is on the smaller-IP side of owner, +1 else.
func (ns *neighborSet) sideOf(a proximity.Addr) int {
	if a < ns.owner {
		return -1
	}
	return 1
}

// closestOn returns the nearest member on the given side, or 0.
func (ns *neighborSet) closestOn(side int) proximity.Addr {
	if side < 0 {
		if len(ns.left) > 0 {
			return ns.left[0]
		}
		return 0
	}
	if len(ns.right) > 0 {
		return ns.right[0]
	}
	return 0
}

// farthestOn returns the farthest member on the given side, or 0.
func (ns *neighborSet) farthestOn(side int) proximity.Addr {
	if side < 0 {
		if len(ns.left) > 0 {
			return ns.left[len(ns.left)-1]
		}
		return 0
	}
	if len(ns.right) > 0 {
		return ns.right[len(ns.right)-1]
	}
	return 0
}

// sideMembers returns a copy of one side.
func (ns *neighborSet) sideMembers(side int) []proximity.Addr {
	if side < 0 {
		return append([]proximity.Addr(nil), ns.left...)
	}
	return append([]proximity.Addr(nil), ns.right...)
}

// closestTo returns, among owner and all members, the address closest
// to target; used to route join messages (§III-A.4).
func (ns *neighborSet) closestTo(target proximity.Addr) proximity.Addr {
	best := ns.owner
	for _, c := range ns.all() {
		if proximity.Closer(target, c, best) {
			best = c
		}
	}
	return best
}

// sortedAddrs is a helper for deterministic iteration in tests.
func sortedAddrs(m map[proximity.Addr]bool) []proximity.Addr {
	out := make([]proximity.Addr, 0, len(m))
	for a := range m {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
