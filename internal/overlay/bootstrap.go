package overlay

import (
	"fmt"
	"sort"

	"repro/internal/proximity"
)

// Bootstrap builds the administrator-installed core of the overlay
// (§III-A.3): one server plus the given core trackers, permanently
// on-line, with neighbour sets preconfigured along the IP-ordered
// line.
func Bootstrap(sys *System, serverAddr proximity.Addr, trackerAddrs []proximity.Addr) (*Server, []*Tracker, error) {
	if len(trackerAddrs) == 0 {
		return nil, nil, fmt.Errorf("overlay: bootstrap needs at least one core tracker")
	}
	srv, err := NewServer(sys, serverAddr)
	if err != nil {
		return nil, nil, err
	}
	addrs := append([]proximity.Addr(nil), trackerAddrs...)
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	trackers := make([]*Tracker, 0, len(addrs))
	for _, a := range addrs {
		t, err := NewTracker(sys, a, serverAddr)
		if err != nil {
			return nil, nil, err
		}
		srv.RegisterTracker(a)
		trackers = append(trackers, t)
	}
	for _, t := range trackers {
		t.BootstrapNeighbors(addrs)
	}
	return srv, trackers, nil
}

// CrashTracker kills the tracker and simulates connection-break
// detection: every tracker that maintains a line connection to it
// notices after cfg.FailureDetect and runs the repair protocol
// (§III-A.5).
func CrashTracker(sys *System, dead *Tracker) {
	addr := dead.Addr()
	sys.Kill(addr)
	dead.Stop()
	// Snapshot who is connected to the dead tracker *now*; the broken
	// TCP connection is what the survivors observe.
	var observers []*Tracker
	for _, a := range sortedActorAddrs(sys) {
		t, ok := sys.actors[a].(*Tracker)
		if !ok || !sys.Alive(a) {
			continue
		}
		if t.connLeft == addr || t.connRight == addr {
			observers = append(observers, t)
		}
	}
	for _, obs := range observers {
		obs := obs
		side := +1
		if addr < obs.Addr() {
			side = -1
		}
		sys.sim.Schedule(sys.cfg.FailureDetect, func() {
			if sys.Alive(obs.Addr()) {
				obs.NotifyNeighborCrash(addr, side)
			}
		})
	}
}

func sortedActorAddrs(sys *System) []proximity.Addr {
	m := make(map[proximity.Addr]bool, len(sys.actors))
	for a := range sys.actors {
		m[a] = true
	}
	return sortedAddrs(m)
}

// LineOrder returns all live trackers sorted by IP — the canonical
// line. Tests use it to assert the repaired topology.
func LineOrder(sys *System) []*Tracker {
	var out []*Tracker
	for _, a := range sortedActorAddrs(sys) {
		if t, ok := sys.actors[a].(*Tracker); ok && sys.Alive(a) {
			out = append(out, t)
		}
	}
	return out
}

// CheckLine verifies the line invariant over live trackers: each
// tracker's maintained connections point at the nearest live tracker
// on each side (ends have one side empty). It returns a descriptive
// error on the first violation.
func CheckLine(sys *System) error {
	line := LineOrder(sys)
	for i, t := range line {
		var wantLeft, wantRight proximity.Addr
		if i > 0 {
			wantLeft = line[i-1].Addr()
		}
		if i < len(line)-1 {
			wantRight = line[i+1].Addr()
		}
		l, r := t.Connections()
		if l != wantLeft {
			return fmt.Errorf("overlay: tracker %v left connection = %v, want %v", t.Addr(), l, wantLeft)
		}
		if r != wantRight {
			return fmt.Errorf("overlay: tracker %v right connection = %v, want %v", t.Addr(), r, wantRight)
		}
	}
	return nil
}
