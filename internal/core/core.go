// Package core is the original home of the dPerf pipeline. The
// implementation moved to the public repro/dperf package; this
// package remains as a thin compatibility layer so existing callers
// keep compiling.
//
// Deprecated: import repro/dperf instead.
package core

import (
	"repro/dperf"
	"repro/internal/costmodel"
	"repro/internal/trace"
)

// Analyzed bundles a parsed program with its static analysis.
//
// Deprecated: use dperf.Analysis.
type Analyzed = dperf.Analysis

// BlockCost is one row of a block-benchmarking report.
//
// Deprecated: use dperf.BlockCost.
type BlockCost = dperf.BlockCost

// BenchReport is the result of the block-benchmarking stage.
//
// Deprecated: use dperf.BenchReport.
type BenchReport = dperf.BenchReport

// TraceSpec configures trace generation.
//
// Deprecated: use dperf.TraceSpec.
type TraceSpec = dperf.TraceSpec

// Analyze parses and statically analyzes a mini-C source.
//
// Deprecated: use dperf.AnalyzeSource.
func Analyze(source string, scaleParams []string) (*Analyzed, error) {
	return dperf.AnalyzeSource(source, scaleParams)
}

// Benchmark runs the instrumented program serially at the given
// (small) parameter values and returns per-block unit costs.
//
// Deprecated: use dperf.Benchmark or (*dperf.Analysis).Bench.
func Benchmark(a *Analyzed, level costmodel.Level, params map[string]int64) (*BenchReport, error) {
	return dperf.Benchmark(a, level, params)
}

// GenerateTraces interprets the program once per rank at the bench
// size, scaling block costs and communication sizes.
//
// Deprecated: use dperf.GenerateTraces or (*dperf.Analysis).Traces.
func GenerateTraces(a *Analyzed, spec TraceSpec) ([]*trace.Trace, error) {
	return dperf.GenerateTraces(a, spec)
}

// Prediction is a complete dPerf result for one configuration.
//
// Deprecated: use dperf.Prediction, which also records the workload,
// engine and scheme.
type Prediction struct {
	Platform  string
	Ranks     int
	Level     costmodel.Level
	Predicted float64 // t_predicted in seconds
	Scatter   float64
	Compute   float64
	Gather    float64
	Traces    []*trace.Trace
}

// fromFacade converts a façade prediction to the legacy shape. The
// legacy shape carries flat traces, so the folded set is materialized;
// a set too large to unfold surfaces as an error rather than nil
// traces.
func fromFacade(p *dperf.Prediction) (*Prediction, error) {
	traces, err := p.TraceSet.Flat()
	if err != nil {
		return nil, err
	}
	return &Prediction{
		Platform:  p.Platform,
		Ranks:     p.Ranks,
		Level:     p.Level,
		Predicted: p.Predicted,
		Scatter:   p.Scatter,
		Compute:   p.Compute,
		Gather:    p.Gather,
		Traces:    traces,
	}, nil
}
