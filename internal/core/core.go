// Package core is dPerf — the paper's performance-prediction
// environment for parallel and distributed applications. It chains
// the stages of Fig. 6:
//
//	source code → automatic static analysis (internal/minic)
//	            → decomposition by blocks + instrumentation
//	            → execution of instrumented code (internal/interp,
//	              virtual hardware counters = PAPI)
//	            → per-block times, scaled up by the static loop model
//	            → trace files (internal/trace)
//	            → trace-based network simulation (internal/replay,
//	              the SimGrid MSG stage)
//	            → predicted time t_predicted
package core

import (
	"fmt"
	"sort"

	"repro/internal/costmodel"
	"repro/internal/interp"
	"repro/internal/minic"
	"repro/internal/platform"
	"repro/internal/trace"
)

// Analyzed bundles a parsed program with its static analysis.
type Analyzed struct {
	Prog *minic.Program
	An   *minic.Analysis
	// Instrumented is the unparsed, probe-bracketed source — the
	// artifact the original dPerf compiles with GCC at each level.
	Instrumented string
}

// Analyze parses and statically analyzes a mini-C source. scaleParams
// names the problem-size parameters block benchmarking scales over.
func Analyze(source string, scaleParams []string) (*Analyzed, error) {
	prog, err := minic.Parse(source)
	if err != nil {
		return nil, err
	}
	an, err := minic.Analyze(prog, scaleParams)
	if err != nil {
		return nil, err
	}
	return &Analyzed{
		Prog:         prog,
		An:           an,
		Instrumented: minic.Unparse(prog, an),
	}, nil
}

// BlockCost is one row of a block-benchmarking report.
type BlockCost struct {
	ID       int
	Func     string
	Pos      minic.Pos
	Depth    int
	Count    int64
	UnitNS   float64 // nanoseconds per execution at the bench size
	TotalNS  float64
	SharePct float64
}

// BenchReport is the result of the block-benchmarking stage.
type BenchReport struct {
	Level  costmodel.Level
	Params map[string]int64
	Blocks []BlockCost
	// TotalNS is the whole serial run's virtual time.
	TotalNS float64
	// InstrumentationOverheadPct estimates the probe overhead the
	// paper keeps low ("an important feature of dPerf is the reduced
	// slowdown due to the use of block benchmarking").
	InstrumentationOverheadPct float64
}

// Benchmark runs the instrumented program serially at the given
// (small) parameter values and returns per-block unit costs.
func Benchmark(a *Analyzed, level costmodel.Level, params map[string]int64) (*BenchReport, error) {
	res, err := interp.Run(a.Prog, a.An, interp.Config{
		Params:  params,
		Level:   level,
		Backend: interp.SerialBackend{},
	})
	if err != nil {
		return nil, err
	}
	rep := &BenchReport{Level: level, Params: params, TotalNS: res.Seconds * 1e9}
	ids := make([]int, 0, len(res.Blocks))
	for id := range res.Blocks {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		st := res.Blocks[id]
		info := a.An.Block(id)
		bc := BlockCost{
			ID:      id,
			Count:   st.Count,
			UnitNS:  st.UnitCost() / costmodel.CPUHz * 1e9,
			TotalNS: st.Cycles / costmodel.CPUHz * 1e9,
		}
		if info != nil {
			bc.Func = info.Func
			bc.Pos = info.Pos
			bc.Depth = info.Depth
		}
		if rep.TotalNS > 0 {
			bc.SharePct = 100 * bc.TotalNS / rep.TotalNS
		}
		rep.Blocks = append(rep.Blocks, bc)
	}
	// The probe cost itself is one block-counter increment per block
	// entry; model it as 2 cycles per recorded execution.
	var probes int64
	for _, b := range rep.Blocks {
		probes += b.Count
	}
	probeNS := float64(probes) * 2 / costmodel.CPUHz * 1e9
	if rep.TotalNS > 0 {
		rep.InstrumentationOverheadPct = 100 * probeNS / (rep.TotalNS + probeNS)
	}
	return rep, nil
}

// traceBackend records communication events and cuts compute
// segments at each event using the interpreter's cycle snapshots.
type traceBackend struct {
	rank, size int
	lastCycles float64
	recs       []trace.Record
	// bytesPerDouble converts size arguments to wire bytes.
	bytesPerDouble float64
}

func (tb *traceBackend) Rank() int { return tb.rank }
func (tb *traceBackend) Size() int { return tb.size }

func (tb *traceBackend) flush(cycles float64) {
	d := cycles - tb.lastCycles
	tb.lastCycles = cycles
	if d > 0 {
		tb.recs = append(tb.recs, trace.Record{Kind: trace.KindCompute, NS: d / costmodel.CPUHz * 1e9})
	}
}

func (tb *traceBackend) Send(peer int, doubles, cycles float64) {
	tb.flush(cycles)
	tb.recs = append(tb.recs, trace.Record{Kind: trace.KindSend, Peer: peer, Bytes: doubles * tb.bytesPerDouble})
}

func (tb *traceBackend) Recv(peer int, doubles, cycles float64) {
	tb.flush(cycles)
	tb.recs = append(tb.recs, trace.Record{Kind: trace.KindRecv, Peer: peer, Bytes: doubles * tb.bytesPerDouble})
}

func (tb *traceBackend) AllreduceMax(x, cycles float64) float64 {
	tb.flush(cycles)
	tb.recs = append(tb.recs, trace.Record{Kind: trace.KindConv})
	return x
}

func (tb *traceBackend) Barrier(cycles float64) {
	tb.flush(cycles)
	tb.recs = append(tb.recs, trace.Record{Kind: trace.KindBarrier})
}

// TraceSpec configures trace generation.
type TraceSpec struct {
	Level costmodel.Level
	// FullParams are the production parameter values (e.g. N=1200).
	FullParams map[string]int64
	// BenchParams are the reduced values actually interpreted; scale
	// parameters are scaled up by FullParams[k]/BenchParams[k].
	BenchParams map[string]int64
	// Ranks is the number of peer processes.
	Ranks int
}

// GenerateTraces interprets the program once per rank at the bench
// size, scaling block costs by ratio^depth and communication sizes
// linearly — dPerf's scale-up of block-benchmarking results.
func GenerateTraces(a *Analyzed, spec TraceSpec) ([]*trace.Trace, error) {
	if spec.Ranks < 1 {
		return nil, fmt.Errorf("core: need at least one rank")
	}
	// Determine the scale ratio from the designated scale parameters.
	ratio := 1.0
	for name := range a.An.ScaleParams {
		full, ok1 := spec.FullParams[name]
		bench, ok2 := spec.BenchParams[name]
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("core: scale parameter %q missing from params", name)
		}
		if bench <= 0 || full <= 0 {
			return nil, fmt.Errorf("core: scale parameter %q must be positive", name)
		}
		ratio *= float64(full) / float64(bench)
	}
	// Per-block scale = ratio^depth.
	blockScale := make(map[int]float64, len(a.An.Blocks))
	for _, b := range a.An.Blocks {
		s := 1.0
		for d := 0; d < b.Depth; d++ {
			s *= ratio
		}
		blockScale[b.ID] = s
	}
	traces := make([]*trace.Trace, spec.Ranks)
	for r := 0; r < spec.Ranks; r++ {
		tb := &traceBackend{rank: r, size: spec.Ranks, bytesPerDouble: 8}
		res, err := interp.Run(a.Prog, a.An, interp.Config{
			Params:     spec.BenchParams,
			Level:      spec.Level,
			Backend:    tb,
			BlockScale: blockScale,
			SizeScale:  ratio,
		})
		if err != nil {
			return nil, fmt.Errorf("core: rank %d: %w", r, err)
		}
		tb.flush(res.Cycles) // trailing compute segment
		traces[r] = &trace.Trace{Rank: r, Of: spec.Ranks, Records: tb.recs}
	}
	if err := trace.Validate(traces); err != nil {
		return nil, err
	}
	return traces, nil
}

// Prediction is a complete dPerf result for one configuration.
type Prediction struct {
	Platform  string
	Ranks     int
	Level     costmodel.Level
	Predicted float64 // t_predicted in seconds
	Scatter   float64
	Compute   float64
	Gather    float64
	Traces    []*trace.Trace
}

// hostsFor picks the first n compute hosts of a platform.
func hostsFor(plat *platform.Platform, n int) ([]string, error) {
	hosts := plat.Hosts()
	if len(hosts) < n {
		return nil, fmt.Errorf("core: platform %s has %d hosts, need %d", plat.Name, len(hosts), n)
	}
	return hosts[:n], nil
}
