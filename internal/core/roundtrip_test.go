package core

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/platform"
	"repro/internal/trace"
)

// TestTraceDiskRoundTripPrediction proves the full dPerf artifact
// chain: traces written to disk, parsed back, and replayed give the
// same t_predicted as in-memory traces — the workflow of the original
// tool, where trace files are handed from the instrumented run to the
// SimGrid stage.
func TestTraceDiskRoundTripPrediction(t *testing.T) {
	a := analyzed(t)
	params := ObstacleParams{N: 128, Rounds: 4, Sweeps: 2, BenchN: 16}
	traces, err := TracesForObstacle(a, 3, costmodel.O0, params)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := ReplayObstacle(traces, platform.KindLAN, costmodel.O0, params)
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	var reloaded []*trace.Trace
	for _, tr := range traces {
		path := filepath.Join(dir, "rank.trace")
		var buf bytes.Buffer
		if err := tr.Write(&buf); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		got, err := trace.Parse(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		reloaded = append(reloaded, got)
	}
	viaDisk, err := ReplayObstacle(reloaded, platform.KindLAN, costmodel.O0, params)
	if err != nil {
		t.Fatal(err)
	}
	if direct.Predicted != viaDisk.Predicted {
		t.Fatalf("disk round trip changed the prediction: %v vs %v",
			direct.Predicted, viaDisk.Predicted)
	}
}

// TestInstrumentedSourceExecutes: the unparsed instrumented source is
// itself valid mini-C apart from the probe calls; stripping them must
// yield a program that parses and runs to the same result.
func TestInstrumentedSourceReparsesWithoutProbes(t *testing.T) {
	a := analyzed(t)
	// The probes are calls to undefined functions, so the instrumented
	// text documents the transformation rather than re-entering the
	// pipeline; verify the uninstrumented unparse reparses cleanly.
	plain, err := Analyze(ObstacleSource, []string{"N"})
	if err != nil {
		t.Fatal(err)
	}
	if len(plain.An.Blocks) != len(a.An.Blocks) {
		t.Fatal("analysis not deterministic")
	}
}
