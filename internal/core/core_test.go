package core

import (
	"math"
	"strings"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/platform"
	"repro/internal/trace"
)

func analyzed(t testing.TB) *Analyzed {
	t.Helper()
	a, err := Analyze(ObstacleSource, []string{"N"})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestAnalyzeObstacleSource(t *testing.T) {
	a := analyzed(t)
	sum := a.An.CommSummary()
	// The kernel has 2 sends, 2 recvs, 1 allreduce, 1 rank, 1 size.
	if sum[0] != 0 { // CommNone never recorded
		t.Fatal("CommNone recorded")
	}
	if got := len(a.An.Comm); got != 7 {
		t.Fatalf("comm sites = %d, want 7", got)
	}
	if !strings.Contains(a.Instrumented, "dperf_block_begin(") {
		t.Fatal("instrumented source lacks probes")
	}
	if !strings.Contains(a.Instrumented, "/* dperf: scales with parameter */") {
		t.Fatal("no loop marked as scaling")
	}
}

func TestAnalyzeBadSource(t *testing.T) {
	if _, err := Analyze("int main() { x = 1; }", nil); err == nil {
		t.Fatal("bad source accepted")
	}
	if _, err := Analyze("int main() { return 0; }", []string{"N"}); err == nil {
		t.Fatal("unknown scale param accepted")
	}
}

func TestBenchmarkReport(t *testing.T) {
	a := analyzed(t)
	rep, err := Benchmark(a, costmodel.O0, map[string]int64{"N": 24, "ROUNDS": 3, "SWEEPS": 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.TotalNS <= 0 {
		t.Fatal("empty benchmark")
	}
	if len(rep.Blocks) == 0 {
		t.Fatal("no blocks measured")
	}
	// The dominant block must be the depth-2 cell kernel.
	var best BlockCost
	for _, b := range rep.Blocks {
		if b.SharePct > best.SharePct {
			best = b
		}
	}
	if best.Depth != 2 {
		t.Fatalf("hottest block depth = %d, want 2 (cell kernel)", best.Depth)
	}
	if best.SharePct < 40 {
		t.Fatalf("hottest block share = %.1f%%, implausibly low", best.SharePct)
	}
	// Instrumentation overhead should be small (paper: "reduced
	// slowdown").
	if rep.InstrumentationOverheadPct > 15 {
		t.Fatalf("instrumentation overhead %.1f%% too large", rep.InstrumentationOverheadPct)
	}
}

func TestBenchmarkLevelScaling(t *testing.T) {
	a := analyzed(t)
	params := map[string]int64{"N": 16, "ROUNDS": 2, "SWEEPS": 2}
	r0, err := Benchmark(a, costmodel.O0, params)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Benchmark(a, costmodel.O3, params)
	if err != nil {
		t.Fatal(err)
	}
	ratio := r3.TotalNS / r0.TotalNS
	if math.Abs(ratio-costmodel.O3.Factor()) > 1e-9 {
		t.Fatalf("O3/O0 = %v, want %v", ratio, costmodel.O3.Factor())
	}
}

func TestGenerateTracesStructure(t *testing.T) {
	a := analyzed(t)
	p := 4
	traces, err := GenerateTraces(a, TraceSpec{
		Level:       costmodel.O0,
		FullParams:  map[string]int64{"N": 96, "ROUNDS": 5, "SWEEPS": 2},
		BenchParams: map[string]int64{"N": 16, "ROUNDS": 5, "SWEEPS": 2},
		Ranks:       p,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != p {
		t.Fatalf("traces = %d", len(traces))
	}
	if err := trace.Validate(traces); err != nil {
		t.Fatal(err)
	}
	// Middle ranks exchange with both neighbours every round: 2 sends,
	// 2 recvs, 1 conv per round.
	mid := traces[1]
	if got := mid.CountKind(trace.KindSend); got != 2*5 {
		t.Fatalf("middle rank sends = %d, want 10", got)
	}
	if got := mid.CountKind(trace.KindConv); got != 5 {
		t.Fatalf("convs = %d, want 5", got)
	}
	// End ranks have one neighbour.
	if got := traces[0].CountKind(trace.KindSend); got != 5 {
		t.Fatalf("end rank sends = %d, want 5", got)
	}
	// Message size is the full N (scaled from bench size): 96 doubles.
	for _, r := range mid.Records {
		if r.Kind == trace.KindSend && math.Abs(r.Bytes-8*96) > 1e-9 {
			t.Fatalf("send bytes = %v, want %v (size scaling)", r.Bytes, 8*96)
		}
	}
}

func TestTraceComputeScalesQuadratically(t *testing.T) {
	a := analyzed(t)
	gen := func(fullN int64) float64 {
		traces, err := GenerateTraces(a, TraceSpec{
			Level:       costmodel.O0,
			FullParams:  map[string]int64{"N": fullN, "ROUNDS": 2, "SWEEPS": 1},
			BenchParams: map[string]int64{"N": 16, "ROUNDS": 2, "SWEEPS": 1},
			Ranks:       2,
		})
		if err != nil {
			t.Fatal(err)
		}
		return traces[0].TotalComputeNS()
	}
	t64, t128 := gen(64), gen(128)
	ratio := t128 / t64
	// Cell work is O(N^2): doubling N must ~quadruple compute.
	if ratio < 3.6 || ratio > 4.4 {
		t.Fatalf("compute ratio for 2x N = %v, want ~4", ratio)
	}
}

func TestGenerateTracesErrors(t *testing.T) {
	a := analyzed(t)
	if _, err := GenerateTraces(a, TraceSpec{Ranks: 0}); err == nil {
		t.Fatal("zero ranks accepted")
	}
	if _, err := GenerateTraces(a, TraceSpec{
		Ranks:       2,
		FullParams:  map[string]int64{"ROUNDS": 1, "SWEEPS": 1},
		BenchParams: map[string]int64{"N": 8, "ROUNDS": 1, "SWEEPS": 1},
	}); err == nil {
		t.Fatal("missing scale param accepted")
	}
}

func TestPredictObstacleSmall(t *testing.T) {
	params := ObstacleParams{N: 128, Rounds: 4, Sweeps: 2, BenchN: 16}
	pred, err := PredictObstacle(platform.KindCluster, 4, costmodel.O3, params)
	if err != nil {
		t.Fatal(err)
	}
	if pred.Predicted <= 0 {
		t.Fatal("non-positive prediction")
	}
	if pred.Scatter <= 0 || pred.Gather < 0 {
		t.Fatalf("phases: scatter=%v gather=%v", pred.Scatter, pred.Gather)
	}
	if pred.Ranks != 4 || pred.Platform != string(platform.KindCluster) {
		t.Fatalf("metadata: %+v", pred)
	}
	if len(pred.Traces) != 4 {
		t.Fatal("traces not attached")
	}
}

func TestPredictionFasterOnFasterNetwork(t *testing.T) {
	params := ObstacleParams{N: 256, Rounds: 6, Sweeps: 2, BenchN: 16}
	a := analyzed(t)
	traces, err := TracesForObstacle(a, 4, costmodel.O0, params)
	if err != nil {
		t.Fatal(err)
	}
	cl, err := ReplayObstacle(traces, platform.KindCluster, costmodel.O0, params)
	if err != nil {
		t.Fatal(err)
	}
	dsl, err := ReplayObstacle(traces, platform.KindDaisy, costmodel.O0, params)
	if err != nil {
		t.Fatal(err)
	}
	if cl.Predicted >= dsl.Predicted {
		t.Fatalf("cluster (%v) not faster than xDSL (%v)", cl.Predicted, dsl.Predicted)
	}
}

func TestBenchNClampedToPeers(t *testing.T) {
	// BenchN smaller than the peer count must be raised so every rank
	// has at least one row.
	params := ObstacleParams{N: 64, Rounds: 2, Sweeps: 1, BenchN: 2}
	if _, err := PredictObstacle(platform.KindCluster, 8, costmodel.O0, params); err != nil {
		t.Fatal(err)
	}
}

func TestPredictionDeterministic(t *testing.T) {
	params := ObstacleParams{N: 128, Rounds: 3, Sweeps: 1, BenchN: 16}
	a, err := PredictObstacle(platform.KindCluster, 2, costmodel.O0, params)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PredictObstacle(platform.KindCluster, 2, costmodel.O0, params)
	if err != nil {
		t.Fatal(err)
	}
	if a.Predicted != b.Predicted {
		t.Fatalf("nondeterministic prediction: %v vs %v", a.Predicted, b.Predicted)
	}
}
