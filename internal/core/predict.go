package core

import (
	"repro/dperf"
	"repro/internal/costmodel"
	"repro/internal/platform"
	"repro/internal/trace"
)

// ObstacleParams are the paper-scale workload values used by the
// experiment harness; see EXPERIMENTS.md for the calibration.
//
// Deprecated: use dperf.ObstacleWorkload.
type ObstacleParams struct {
	N      int64
	Rounds int64
	Sweeps int64
	// BenchN is the reduced dimension interpreted during block
	// benchmarking and trace generation.
	BenchN int64
}

// DefaultObstacleParams returns the calibrated experiment workload,
// matching obstacle.DefaultConfig.
//
// Deprecated: use dperf.DefaultObstacleWorkload.
func DefaultObstacleParams() ObstacleParams {
	return ObstacleParams{N: 1200, Rounds: 120, Sweeps: 15, BenchN: 32}
}

// workload converts the legacy parameter struct to the façade's
// workload implementation.
func (op ObstacleParams) workload() dperf.ObstacleWorkload {
	return dperf.ObstacleWorkload{N: op.N, Rounds: op.Rounds, Sweeps: op.Sweeps, BenchN: op.BenchN}
}

// ScatterBytesPerPeer mirrors obstacle.Config: initial strip + obstacle.
func (op ObstacleParams) ScatterBytesPerPeer(p int) float64 {
	return op.workload().ScatterBytes(p)
}

// GatherBytesPerPeer mirrors obstacle.Config: solution strip.
func (op ObstacleParams) GatherBytesPerPeer(p int) float64 {
	return op.workload().GatherBytes(p)
}

// PredictObstacle runs the full dPerf pipeline for the obstacle
// problem on the named platform kind.
//
// Deprecated: use dperf.New(dperf.ObstacleWorkload{...}).Predict().
func PredictObstacle(kind platform.Kind, peers int, level costmodel.Level, params ObstacleParams) (*Prediction, error) {
	pred, err := dperf.New(params.workload(),
		dperf.WithPlatform(kind), dperf.WithRanks(peers), dperf.WithLevel(level)).Predict()
	if err != nil {
		return nil, err
	}
	return fromFacade(pred)
}

// TracesForObstacle runs analysis-driven trace generation for the
// obstacle workload: one trace per rank, platform-independent.
//
// Deprecated: use (*dperf.Analysis).Traces.
func TracesForObstacle(a *Analyzed, peers int, level costmodel.Level, params ObstacleParams) ([]*trace.Trace, error) {
	ts, err := a.WithWorkload(params.workload()).Traces(dperf.WithRanks(peers), dperf.WithLevel(level))
	if err != nil {
		return nil, err
	}
	return ts.Flat()
}

// ReplayObstacle replays previously generated traces on a platform
// kind, completing the prediction.
//
// Deprecated: use (*dperf.TraceSet).Predict.
func ReplayObstacle(traces []*trace.Trace, kind platform.Kind, level costmodel.Level, params ObstacleParams) (*Prediction, error) {
	peers := len(traces)
	ts := &dperf.TraceSet{
		Workload:     "obstacle",
		Ranks:        peers,
		Level:        level,
		ScatterBytes: params.ScatterBytesPerPeer(peers),
		GatherBytes:  params.GatherBytesPerPeer(peers),
		Traces:       traces,
	}
	pred, err := ts.Predict(dperf.WithPlatform(kind))
	if err != nil {
		return nil, err
	}
	return fromFacade(pred)
}

// PredictProgram predicts an already-analyzed program with the
// obstacle deployment shape (scatter/gather sized by params).
//
// Deprecated: use the dperf pipeline with a custom Workload.
func PredictProgram(a *Analyzed, kind platform.Kind, peers int, level costmodel.Level, params ObstacleParams) (*Prediction, error) {
	ts, err := a.WithWorkload(params.workload()).Traces(dperf.WithRanks(peers), dperf.WithLevel(level))
	if err != nil {
		return nil, err
	}
	pred, err := ts.Predict(dperf.WithPlatform(kind))
	if err != nil {
		return nil, err
	}
	return fromFacade(pred)
}
