package core

import (
	"fmt"

	"repro/internal/costmodel"
	"repro/internal/p2psap"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/trace"
)

// ObstacleParams are the paper-scale workload values used by the
// experiment harness; see EXPERIMENTS.md for the calibration.
type ObstacleParams struct {
	N      int64
	Rounds int64
	Sweeps int64
	// BenchN is the reduced dimension interpreted during block
	// benchmarking and trace generation.
	BenchN int64
}

// DefaultObstacleParams returns the calibrated experiment workload,
// matching obstacle.DefaultConfig.
func DefaultObstacleParams() ObstacleParams {
	return ObstacleParams{N: 1200, Rounds: 120, Sweeps: 15, BenchN: 32}
}

func (op ObstacleParams) full() map[string]int64 {
	return map[string]int64{"N": op.N, "ROUNDS": op.Rounds, "SWEEPS": op.Sweeps}
}

func (op ObstacleParams) bench() map[string]int64 {
	return map[string]int64{"N": op.BenchN, "ROUNDS": op.Rounds, "SWEEPS": op.Sweeps}
}

// ScatterBytesPerPeer mirrors obstacle.Config: initial strip + obstacle.
func (op ObstacleParams) ScatterBytesPerPeer(p int) float64 {
	return 2 * 8 * float64(op.N) * float64(op.N) / float64(p)
}

// GatherBytesPerPeer mirrors obstacle.Config: solution strip.
func (op ObstacleParams) GatherBytesPerPeer(p int) float64 {
	return 8 * float64(op.N) * float64(op.N) / float64(p)
}

// PredictObstacle runs the full dPerf pipeline for the obstacle
// problem on the named platform kind with the given peer count and
// optimization level: analyze → benchmark (bench size) → traces
// (scaled) → replay on the platform.
func PredictObstacle(kind platform.Kind, peers int, level costmodel.Level, params ObstacleParams) (*Prediction, error) {
	a, err := Analyze(ObstacleSource, []string{"N"})
	if err != nil {
		return nil, err
	}
	return PredictProgram(a, kind, peers, level, params)
}

// TracesForObstacle runs analysis-driven trace generation for the
// obstacle workload: one trace per rank, platform-independent. The
// same traces can then be replayed on several platforms (that is
// dPerf's whole point: benchmark once, predict anywhere).
func TracesForObstacle(a *Analyzed, peers int, level costmodel.Level, params ObstacleParams) ([]*trace.Trace, error) {
	if peers < 1 {
		return nil, fmt.Errorf("core: need at least one peer")
	}
	if params.BenchN < int64(peers) {
		// Every rank needs at least one row at bench size.
		params.BenchN = int64(peers)
	}
	return GenerateTraces(a, TraceSpec{
		Level:       level,
		FullParams:  params.full(),
		BenchParams: params.bench(),
		Ranks:       peers,
	})
}

// ReplayObstacle replays previously generated traces on a platform
// kind, completing the prediction.
func ReplayObstacle(traces []*trace.Trace, kind platform.Kind, level costmodel.Level, params ObstacleParams) (*Prediction, error) {
	peers := len(traces)
	plat, err := platform.ForKind(kind, peers)
	if err != nil {
		return nil, err
	}
	hosts, err := hostsFor(plat, peers)
	if err != nil {
		return nil, err
	}
	res, err := replay.Run(replay.Spec{
		Platform:     plat,
		Hosts:        hosts,
		Submitter:    plat.Frontend,
		Scheme:       p2psap.Synchronous,
		ScatterBytes: params.ScatterBytesPerPeer(peers),
		GatherBytes:  params.GatherBytesPerPeer(peers),
	}, traces)
	if err != nil {
		return nil, err
	}
	return &Prediction{
		Platform:  string(kind),
		Ranks:     peers,
		Level:     level,
		Predicted: res.PredictedSeconds,
		Scatter:   res.ScatterSeconds,
		Compute:   res.ComputeSeconds,
		Gather:    res.GatherSeconds,
		Traces:    traces,
	}, nil
}

// PredictProgram predicts an already-analyzed program with the
// obstacle deployment shape (scatter/gather sized by params).
func PredictProgram(a *Analyzed, kind platform.Kind, peers int, level costmodel.Level, params ObstacleParams) (*Prediction, error) {
	traces, err := TracesForObstacle(a, peers, level, params)
	if err != nil {
		return nil, err
	}
	return ReplayObstacle(traces, kind, level, params)
}
