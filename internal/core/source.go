package core

import "repro/dperf"

// ObstacleSource is the mini-C source of the distributed obstacle
// problem kernel — the dPerf input code of the paper's evaluation.
//
// Deprecated: use dperf.ObstacleSource.
const ObstacleSource = dperf.ObstacleSource
