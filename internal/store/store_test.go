package store

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/dperf"
)

var (
	fixtureOnce sync.Once
	fixtureBin  []byte
	fixtureJSON []byte
	fixtureErr  error
)

// fixture returns one small trace set serialized in both formats.
func fixture(t *testing.T) (bin, js []byte) {
	t.Helper()
	fixtureOnce.Do(func() {
		w := dperf.ObstacleWorkload{N: 128, Rounds: 4, Sweeps: 2, BenchN: 16}
		a, err := dperf.New(w).Analyze()
		if err != nil {
			fixtureErr = err
			return
		}
		ts, err := a.Traces(dperf.WithRanks(2))
		if err != nil {
			fixtureErr = err
			return
		}
		var b bytes.Buffer
		if fixtureErr = ts.WriteBinary(&b); fixtureErr != nil {
			return
		}
		fixtureBin = b.Bytes()
		var j bytes.Buffer
		if fixtureErr = ts.WriteJSON(&j); fixtureErr != nil {
			return
		}
		fixtureJSON = j.Bytes()
	})
	if fixtureErr != nil {
		t.Fatal(fixtureErr)
	}
	return fixtureBin, fixtureJSON
}

func TestPutGetRoundtrip(t *testing.T) {
	bin, js := fixture(t)
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	e, created, err := s.Put(bin)
	if err != nil {
		t.Fatal(err)
	}
	if !created {
		t.Fatal("first Put reported an existing entry")
	}
	if e.Digest != Digest(bin) {
		t.Fatalf("digest %s, want %s", e.Digest, Digest(bin))
	}
	if e.Size != int64(len(bin)) {
		t.Fatalf("size %d, want %d", e.Size, len(bin))
	}
	if e.Set == nil || e.Set.Ranks != 2 || e.Stats == nil || e.Stats.Ranks != 2 {
		t.Fatalf("entry not fully admitted: %+v", e)
	}

	again, created, err := s.Put(bin)
	if err != nil {
		t.Fatal(err)
	}
	if created || again != e {
		t.Fatal("re-upload did not dedupe to the existing entry")
	}

	// The JSON serialization of the same set is different bytes, hence
	// a distinct artifact.
	ej, created, err := s.Put(js)
	if err != nil {
		t.Fatal(err)
	}
	if !created || ej.Digest == e.Digest {
		t.Fatal("JSON artifact did not get its own entry")
	}

	if got, ok := s.Get(e.Digest); !ok || got != e {
		t.Fatal("Get lost the entry")
	}
	if _, ok := s.Get(strings.Repeat("0", 64)); ok {
		t.Fatal("Get invented an entry")
	}
	if s.Len() != 2 {
		t.Fatalf("Len %d, want 2", s.Len())
	}
	list := s.List()
	if len(list) != 2 || list[0].Digest >= list[1].Digest {
		t.Fatalf("List not sorted by digest: %v", list)
	}
}

func TestPersistReopen(t *testing.T) {
	bin, _ := fixture(t)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, _, err := s.Put(bin)
	if err != nil {
		t.Fatal(err)
	}
	ondisk, err := os.ReadFile(filepath.Join(dir, e.Digest))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ondisk, bin) {
		t.Fatal("persisted artifact differs from the uploaded bytes")
	}

	s2, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e2, ok := s2.Get(e.Digest)
	if !ok {
		t.Fatal("reopened store lost the entry")
	}
	// Stats are recomputed from identical bytes, so they must agree
	// exactly — the determinism contract extends to admission.
	if e2.Stats.Records != e.Stats.Records || e2.Stats.Ops != e.Stats.Ops ||
		e2.Stats.BinaryBytes != e.Stats.BinaryBytes || e2.Stats.TemplateBytes != e.Stats.TemplateBytes {
		t.Fatalf("reopened stats diverged: %+v vs %+v", e2.Stats, e.Stats)
	}
}

func TestOpenRejectsCorrupt(t *testing.T) {
	bin, _ := fixture(t)
	dir := t.TempDir()
	s, err := Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	e, _, err := s.Put(bin)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, e.Digest)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir); err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("corrupted artifact not rejected: %v", err)
	}
}

func TestPutHostile(t *testing.T) {
	bin, _ := fixture(t)
	s, err := Open("")
	if err != nil {
		t.Fatal(err)
	}

	garbage := []byte("not a trace set at all")
	if _, _, err := s.Put(garbage); err == nil ||
		!strings.Contains(err.Error(), "traceset "+Digest(garbage)[:12]) {
		t.Fatalf("garbage admission error lacks the artifact label: %v", err)
	}

	truncated := bin[:len(bin)/2]
	_, _, err = s.Put(truncated)
	if err == nil {
		t.Fatal("truncated artifact admitted")
	}
	if !strings.Contains(err.Error(), "byte offset") {
		t.Fatalf("truncated admission error lacks the byte offset: %v", err)
	}
	if !strings.Contains(err.Error(), "traceset "+Digest(truncated)[:12]) {
		t.Fatalf("truncated admission error lacks the artifact label: %v", err)
	}
	if s.Len() != 0 {
		t.Fatalf("failed admissions left %d entries", s.Len())
	}
}
