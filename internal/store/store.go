// Package store is the content-addressed trace-set store behind
// dperfd. Artifacts are admitted by their serialized bytes and keyed
// by the SHA-256 of those bytes, so a digest names exactly one trace
// set forever — the property the server's result cache leans on: a
// cached response keyed by (digest, platform, spec) can never go stale,
// because the digest pins the input bits.
//
// Admission does all mutation up front: the artifact is parsed
// (dperf.ReadTraceSetData — the same parser the CLI uses, so store and
// CLI accept byte-identical inputs), prepared for concurrent sharing
// (TraceSet.Prepare) and measured (TraceSet.Stats, which materializes
// every lazy representation). After Put returns, the entry is
// immutable and its set replays freely from any number of goroutines.
//
// With a directory the store persists each artifact under its digest
// via an atomic temp-file rename, and reopening verifies every file
// against its name — a flipped bit fails loudly at startup, not as a
// silently different prediction.
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"repro/dperf"
)

// Entry is one admitted trace set. All fields are immutable after
// admission.
type Entry struct {
	// Digest is the lowercase hex SHA-256 of the artifact bytes.
	Digest string
	// Size is the artifact's serialized length in bytes.
	Size int64
	// Set is the parsed, Prepare()d trace set, safe for concurrent
	// replay.
	Set *dperf.TraceSet
	// Stats is the admission-time measurement of the set (computed once
	// here precisely so no request-time path has to touch the set's
	// lazy conversions).
	Stats *dperf.TraceStats
}

// Store is a content-addressed trace-set store, safe for concurrent
// use.
type Store struct {
	dir string // "" = memory only

	mu      sync.Mutex
	entries map[string]*Entry
}

// Digest returns the store key for an artifact: the lowercase hex
// SHA-256 of its bytes.
func Digest(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

// Open returns a store persisting artifacts in dir, creating the
// directory if needed and re-admitting every artifact already present.
// An empty dir yields a memory-only store. Persisted files are named
// by their digest; a file whose content no longer hashes to its name
// fails Open.
func Open(dir string) (*Store, error) {
	s := &Store{dir: dir, entries: make(map[string]*Entry)}
	if dir == "" {
		return s, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	names, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, de := range names {
		if de.IsDir() || !isDigestName(de.Name()) {
			continue
		}
		path := filepath.Join(dir, de.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		if got := Digest(data); got != de.Name() {
			return nil, fmt.Errorf("store: %s is corrupt: content digest %s does not match its name", path, got)
		}
		if _, _, err := s.admit(data, de.Name(), false); err != nil {
			return nil, fmt.Errorf("store: %s: %w", path, err)
		}
	}
	return s, nil
}

// isDigestName reports whether name is a lowercase hex SHA-256.
func isDigestName(name string) bool {
	if len(name) != sha256.Size*2 {
		return false
	}
	for _, c := range name {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// Put admits an artifact: parse, prepare, measure, persist. It returns
// the entry plus whether it was newly created — re-uploading known
// bytes is an O(hash) no-op returning the existing entry.
func (s *Store) Put(data []byte) (*Entry, bool, error) {
	return s.admit(data, Digest(data), s.dir != "")
}

func (s *Store) admit(data []byte, digest string, persist bool) (*Entry, bool, error) {
	s.mu.Lock()
	if e, ok := s.entries[digest]; ok {
		s.mu.Unlock()
		return e, false, nil
	}
	s.mu.Unlock()

	// Parse and materialize outside the lock: admission is the
	// expensive path and must not block serving.
	ts, err := dperf.ReadTraceSetData("traceset "+shortDigest(digest), data)
	if err != nil {
		return nil, false, err
	}
	if err := ts.Prepare(); err != nil {
		return nil, false, err
	}
	stats, err := ts.Stats()
	if err != nil {
		return nil, false, fmt.Errorf("traceset %s: %w", shortDigest(digest), err)
	}
	if persist {
		if err := s.persist(data, digest); err != nil {
			return nil, false, err
		}
	}

	e := &Entry{Digest: digest, Size: int64(len(data)), Set: ts, Stats: stats}
	s.mu.Lock()
	defer s.mu.Unlock()
	if existing, ok := s.entries[digest]; ok {
		// Lost an admission race for the same bytes; equal digests mean
		// equal artifacts, so either entry serves identically.
		return existing, false, nil
	}
	s.entries[digest] = e
	return e, true, nil
}

// persist writes the artifact to dir/<digest> atomically: a temp file
// in the same directory, then a rename, so a crash never leaves a
// half-written artifact under a valid digest name.
func (s *Store) persist(data []byte, digest string) error {
	f, err := os.CreateTemp(s.dir, "put-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(s.dir, digest)); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// shortDigest abbreviates a digest for error labels.
func shortDigest(d string) string {
	if len(d) > 12 {
		return d[:12]
	}
	return d
}

// Get returns the entry for a digest.
func (s *Store) Get(digest string) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[digest]
	return e, ok
}

// List returns every entry ordered by digest.
func (s *Store) List() []*Entry {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Entry, 0, len(s.entries))
	for _, e := range s.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Digest < out[j].Digest })
	return out
}

// Len reports the number of admitted trace sets.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}
