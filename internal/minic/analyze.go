package minic

import (
	"fmt"
	"sort"
)

// BlockInfo describes one basic block found by the analyzer.
type BlockInfo struct {
	ID   int
	Func string
	Pos  Pos
	// Depth is the number of enclosing scale-parameter-dependent loops:
	// block execution counts grow as (scale parameter)^Depth, the
	// exponent dPerf's block benchmarking uses to scale measurements up
	// (paper §III-D.2, "benchmarking by block ... scaled-up while
	// maintaining accuracy").
	Depth int
	// Kind distinguishes straight-line blocks from control bookkeeping.
	Kind string // "straight", "if", "for", "while", "return"
}

// CommSite is a detected communication call.
type CommSite struct {
	Kind CommKind
	Call *Call
	Func string
	// SizeScaled reports whether the size argument depends on a scale
	// parameter (so recorded sizes must be scaled linearly).
	SizeScaled bool
}

// Analysis is the result of static analysis over a program.
type Analysis struct {
	Prog *Program
	// ScaleParams are the parameter names benchmarks scale over
	// (typically the problem dimension N).
	ScaleParams map[string]bool

	Blocks []*BlockInfo
	// StmtBlock maps every statement to its basic block ID.
	StmtBlock map[Stmt]int
	// Comm lists every communication site in source order.
	Comm []*CommSite
	// Tainted holds, per function, the variables whose values depend on
	// a scale parameter ("" holds globals).
	Tainted map[string]map[string]bool
}

// Analyze runs semantic checks, basic-block decomposition, taint
// analysis and communication detection. scaleParams names the `param`
// declarations that vary between benchmark-size and full-size runs.
func Analyze(prog *Program, scaleParams []string) (*Analysis, error) {
	a := &Analysis{
		Prog:        prog,
		ScaleParams: make(map[string]bool),
		StmtBlock:   make(map[Stmt]int),
		Tainted:     make(map[string]map[string]bool),
	}
	declared := make(map[string]bool)
	for _, pd := range prog.Params {
		declared[pd.Name] = true
	}
	for _, sp := range scaleParams {
		if !declared[sp] {
			return nil, fmt.Errorf("minic: scale parameter %q is not declared with `param int %s;`", sp, sp)
		}
		a.ScaleParams[sp] = true
	}
	if err := a.checkSemantics(); err != nil {
		return nil, err
	}
	a.computeTaint()
	for _, fn := range prog.Funcs {
		a.decompose(fn)
	}
	a.detectComm()
	return a, nil
}

// Block returns a block by ID.
func (a *Analysis) Block(id int) *BlockInfo {
	if id < 0 || id >= len(a.Blocks) {
		return nil
	}
	return a.Blocks[id]
}

// --------------------------------------------------------------------------
// Semantic checks: every identifier must be declared; builtin/comm
// arities must match.

var commArity = map[CommKind]int{
	CommRank: 0, CommSize: 0, CommSend: 2, CommRecv: 2,
	CommAllreduceMax: 1, CommBarrier: 0,
}

func (a *Analysis) checkSemantics() error {
	globals := make(map[string]bool)
	for _, pd := range a.Prog.Params {
		globals[pd.Name] = true
	}
	for _, g := range a.Prog.Globals {
		if globals[g.Decl.Name] {
			return fmt.Errorf("minic: %v: duplicate global %q", g.Pos, g.Decl.Name)
		}
		globals[g.Decl.Name] = true
	}
	funcs := make(map[string]*FuncDecl)
	for _, fn := range a.Prog.Funcs {
		if funcs[fn.Name] != nil {
			return fmt.Errorf("minic: %v: duplicate function %q", fn.Pos, fn.Name)
		}
		funcs[fn.Name] = fn
	}
	for _, fn := range a.Prog.Funcs {
		scope := make(map[string]bool)
		for k := range globals {
			scope[k] = true
		}
		for _, p := range fn.Params {
			scope[p.Name] = true
		}
		if err := a.checkBlock(fn, fn.Body, scope, funcs); err != nil {
			return err
		}
	}
	return nil
}

func (a *Analysis) checkBlock(fn *FuncDecl, b *BlockStmt, outer map[string]bool, funcs map[string]*FuncDecl) error {
	scope := make(map[string]bool, len(outer))
	for k := range outer {
		scope[k] = true
	}
	for _, s := range b.Stmts {
		if err := a.checkStmt(fn, s, scope, funcs); err != nil {
			return err
		}
	}
	return nil
}

func (a *Analysis) checkStmt(fn *FuncDecl, s Stmt, scope map[string]bool, funcs map[string]*FuncDecl) error {
	switch st := s.(type) {
	case *DeclStmt:
		for _, d := range st.Dims {
			if err := a.checkExpr(fn, d, scope, funcs); err != nil {
				return err
			}
		}
		if st.Init != nil {
			if err := a.checkExpr(fn, st.Init, scope, funcs); err != nil {
				return err
			}
		}
		scope[st.Name] = true
	case *AssignStmt:
		if err := a.checkExpr(fn, st.LHS, scope, funcs); err != nil {
			return err
		}
		return a.checkExpr(fn, st.RHS, scope, funcs)
	case *ExprStmt:
		return a.checkExpr(fn, st.X, scope, funcs)
	case *IfStmt:
		if err := a.checkExpr(fn, st.Cond, scope, funcs); err != nil {
			return err
		}
		if err := a.checkBlock(fn, st.Then, scope, funcs); err != nil {
			return err
		}
		if st.Else != nil {
			return a.checkBlock(fn, st.Else, scope, funcs)
		}
	case *ForStmt:
		inner := make(map[string]bool, len(scope))
		for k := range scope {
			inner[k] = true
		}
		if st.Init != nil {
			if err := a.checkStmt(fn, st.Init, inner, funcs); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := a.checkExpr(fn, st.Cond, inner, funcs); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if err := a.checkStmt(fn, st.Post, inner, funcs); err != nil {
				return err
			}
		}
		return a.checkBlock(fn, st.Body, inner, funcs)
	case *WhileStmt:
		if err := a.checkExpr(fn, st.Cond, scope, funcs); err != nil {
			return err
		}
		return a.checkBlock(fn, st.Body, scope, funcs)
	case *ReturnStmt:
		if st.X != nil {
			return a.checkExpr(fn, st.X, scope, funcs)
		}
	case *BlockStmt:
		return a.checkBlock(fn, st, scope, funcs)
	}
	return nil
}

func (a *Analysis) checkExpr(fn *FuncDecl, e Expr, scope map[string]bool, funcs map[string]*FuncDecl) error {
	switch x := e.(type) {
	case *NumLit:
		return nil
	case *Ident:
		if !scope[x.Name] {
			return fmt.Errorf("minic: %v: undeclared identifier %q in %s", x.Pos, x.Name, fn.Name)
		}
	case *Index:
		if err := a.checkExpr(fn, x.Base, scope, funcs); err != nil {
			return err
		}
		return a.checkExpr(fn, x.Idx, scope, funcs)
	case *Unary:
		return a.checkExpr(fn, x.X, scope, funcs)
	case *Binary:
		if err := a.checkExpr(fn, x.L, scope, funcs); err != nil {
			return err
		}
		return a.checkExpr(fn, x.R, scope, funcs)
	case *Call:
		if k := CommKindOf(x.Name); k != CommNone {
			if want := commArity[k]; len(x.Args) != want {
				return fmt.Errorf("minic: %v: %s takes %d argument(s), got %d", x.Pos, x.Name, want, len(x.Args))
			}
		} else if IsBuiltin(x.Name) {
			want := 1
			if x.Name == "fmax" || x.Name == "fmin" {
				want = 2
			}
			if len(x.Args) != want {
				return fmt.Errorf("minic: %v: %s takes %d argument(s), got %d", x.Pos, x.Name, want, len(x.Args))
			}
		} else {
			callee := funcs[x.Name]
			if callee == nil {
				return fmt.Errorf("minic: %v: call to undefined function %q", x.Pos, x.Name)
			}
			if len(x.Args) != len(callee.Params) {
				return fmt.Errorf("minic: %v: %s takes %d argument(s), got %d", x.Pos, x.Name, len(callee.Params), len(x.Args))
			}
		}
		for _, arg := range x.Args {
			if err := a.checkExpr(fn, arg, scope, funcs); err != nil {
				return err
			}
		}
	}
	return nil
}

// --------------------------------------------------------------------------
// Taint: which variables depend on a scale parameter.

func (a *Analysis) computeTaint() {
	globals := make(map[string]bool)
	for name := range a.ScaleParams {
		globals[name] = true
	}
	// Globals initialized from tainted expressions become tainted.
	for changed := true; changed; {
		changed = false
		for _, g := range a.Prog.Globals {
			if g.Decl.Init != nil && !globals[g.Decl.Name] && a.exprTainted(g.Decl.Init, globals, nil) {
				globals[g.Decl.Name] = true
				changed = true
			}
		}
	}
	a.Tainted[""] = globals
	for _, fn := range a.Prog.Funcs {
		local := make(map[string]bool)
		for changed := true; changed; {
			changed = false
			walkStmts(fn.Body, func(s Stmt) {
				switch st := s.(type) {
				case *DeclStmt:
					if st.Init != nil && !local[st.Name] && a.exprTainted(st.Init, globals, local) {
						local[st.Name] = true
						changed = true
					}
				case *AssignStmt:
					if id, ok := st.LHS.(*Ident); ok {
						if !local[id.Name] && a.exprTainted(st.RHS, globals, local) {
							local[id.Name] = true
							changed = true
						}
					}
				}
			})
		}
		a.Tainted[fn.Name] = local
	}
}

func (a *Analysis) exprTainted(e Expr, globals, local map[string]bool) bool {
	found := false
	walkExpr(e, func(x Expr) {
		if id, ok := x.(*Ident); ok {
			if globals[id.Name] || (local != nil && local[id.Name]) {
				found = true
			}
		}
	})
	return found
}

// loopScales reports whether a for loop's trip count depends on a
// scale parameter (bound or init tainted).
func (a *Analysis) loopScales(fn string, st *ForStmt) bool {
	globals := a.Tainted[""]
	local := a.Tainted[fn]
	if st.Cond != nil && a.exprTainted(st.Cond, globals, local) {
		return true
	}
	if as, ok := st.Init.(*AssignStmt); ok && as != nil && a.exprTainted(as.RHS, globals, local) {
		return true
	}
	if ds, ok := st.Init.(*DeclStmt); ok && ds != nil && ds.Init != nil && a.exprTainted(ds.Init, globals, local) {
		return true
	}
	return false
}

// --------------------------------------------------------------------------
// Basic-block decomposition.

func (a *Analysis) newBlock(fn string, pos Pos, depth int, kind string) int {
	id := len(a.Blocks)
	a.Blocks = append(a.Blocks, &BlockInfo{ID: id, Func: fn, Pos: pos, Depth: depth, Kind: kind})
	return id
}

// decompose assigns block IDs within one function.
func (a *Analysis) decompose(fn *FuncDecl) {
	a.decomposeBlock(fn, fn.Body, 0)
}

// stmtBreaksBlock reports whether a statement ends the current
// straight-line block (control flow or a communication call).
func stmtBreaksBlock(s Stmt) bool {
	switch st := s.(type) {
	case *IfStmt, *ForStmt, *WhileStmt, *ReturnStmt, *BlockStmt:
		return true
	case *ExprStmt:
		if c, ok := st.X.(*Call); ok && CommKindOf(c.Name) != CommNone {
			return true
		}
	case *AssignStmt:
		if c, ok := st.RHS.(*Call); ok && CommKindOf(c.Name) != CommNone {
			return true
		}
	case *DeclStmt:
		if c, ok := st.Init.(*Call); ok && CommKindOf(c.Name) != CommNone {
			return true
		}
	}
	return false
}

func (a *Analysis) decomposeBlock(fn *FuncDecl, b *BlockStmt, depth int) {
	cur := -1
	for _, s := range b.Stmts {
		if stmtBreaksBlock(s) {
			cur = -1
			switch st := s.(type) {
			case *IfStmt:
				id := a.newBlock(fn.Name, st.Pos, depth, "if")
				a.StmtBlock[s] = id
				a.decomposeBlock(fn, st.Then, depth)
				if st.Else != nil {
					a.decomposeBlock(fn, st.Else, depth)
				}
			case *ForStmt:
				st.ScalesWithParam = a.loopScales(fn.Name, st)
				inner := depth
				if st.ScalesWithParam {
					inner++
				}
				// The loop's own bookkeeping (condition, post, branch)
				// runs once per iteration, so it scales with the loop's
				// trip count, i.e. at the body depth.
				id := a.newBlock(fn.Name, st.Pos, inner, "for")
				a.StmtBlock[s] = id
				a.decomposeBlock(fn, st.Body, inner)
			case *WhileStmt:
				id := a.newBlock(fn.Name, st.Pos, depth, "while")
				a.StmtBlock[s] = id
				a.decomposeBlock(fn, st.Body, depth)
			case *ReturnStmt:
				a.StmtBlock[s] = a.newBlock(fn.Name, st.Pos, depth, "return")
			case *BlockStmt:
				a.decomposeBlock(fn, st, depth)
			case *ExprStmt, *AssignStmt, *DeclStmt:
				// Communication statement: its own block so the trace
				// generator can cut compute segments exactly here.
				a.StmtBlock[s] = a.newBlock(fn.Name, s.Position(), depth, "straight")
			}
			continue
		}
		if cur == -1 {
			cur = a.newBlock(fn.Name, s.Position(), depth, "straight")
		}
		a.StmtBlock[s] = cur
	}
}

// --------------------------------------------------------------------------
// Communication detection.

func (a *Analysis) detectComm() {
	for _, fn := range a.Prog.Funcs {
		fname := fn.Name
		walkStmts(fn.Body, func(s Stmt) {
			var exprs []Expr
			switch st := s.(type) {
			case *ExprStmt:
				exprs = append(exprs, st.X)
			case *AssignStmt:
				exprs = append(exprs, st.RHS)
			case *DeclStmt:
				if st.Init != nil {
					exprs = append(exprs, st.Init)
				}
			case *IfStmt:
				exprs = append(exprs, st.Cond)
			case *ForStmt:
				if st.Cond != nil {
					exprs = append(exprs, st.Cond)
				}
			case *WhileStmt:
				exprs = append(exprs, st.Cond)
			case *ReturnStmt:
				if st.X != nil {
					exprs = append(exprs, st.X)
				}
			}
			for _, e := range exprs {
				walkExpr(e, func(x Expr) {
					c, ok := x.(*Call)
					if !ok {
						return
					}
					k := CommKindOf(c.Name)
					if k == CommNone {
						return
					}
					site := &CommSite{Kind: k, Call: c, Func: fname}
					if k == CommSend || k == CommRecv {
						site.SizeScaled = a.exprTainted(c.Args[1], a.Tainted[""], a.Tainted[fname])
					}
					a.Comm = append(a.Comm, site)
				})
			}
		})
	}
	sort.SliceStable(a.Comm, func(i, j int) bool {
		pi, pj := a.Comm[i].Call.Pos, a.Comm[j].Call.Pos
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Col < pj.Col
	})
}

// CommSummary returns counts per communication kind (report output).
func (a *Analysis) CommSummary() map[CommKind]int {
	out := make(map[CommKind]int)
	for _, c := range a.Comm {
		out[c.Kind]++
	}
	return out
}

// --------------------------------------------------------------------------
// Generic walkers.

func walkStmts(b *BlockStmt, f func(Stmt)) {
	for _, s := range b.Stmts {
		f(s)
		switch st := s.(type) {
		case *IfStmt:
			walkStmts(st.Then, f)
			if st.Else != nil {
				walkStmts(st.Else, f)
			}
		case *ForStmt:
			if st.Init != nil {
				f(st.Init)
			}
			if st.Post != nil {
				f(st.Post)
			}
			walkStmts(st.Body, f)
		case *WhileStmt:
			walkStmts(st.Body, f)
		case *BlockStmt:
			walkStmts(st, f)
		}
	}
}

func walkExpr(e Expr, f func(Expr)) {
	if e == nil {
		return
	}
	f(e)
	switch x := e.(type) {
	case *Index:
		walkExpr(x.Base, f)
		walkExpr(x.Idx, f)
	case *Unary:
		walkExpr(x.X, f)
	case *Binary:
		walkExpr(x.L, f)
		walkExpr(x.R, f)
	case *Call:
		for _, a := range x.Args {
			walkExpr(a, f)
		}
	}
}
