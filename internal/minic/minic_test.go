package minic

import (
	"strings"
	"testing"
	"testing/quick"
)

const tiny = `
param int N;
int main() {
    int i;
    int s;
    s = 0;
    for (i = 0; i < N; i++) {
        s = s + i;
    }
    return s;
}
`

func mustParse(t *testing.T, src string) *Program {
	t.Helper()
	p, err := Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func mustAnalyze(t *testing.T, src string, scale []string) (*Program, *Analysis) {
	t.Helper()
	p := mustParse(t, src)
	a, err := Analyze(p, scale)
	if err != nil {
		t.Fatal(err)
	}
	return p, a
}

func TestParseTiny(t *testing.T) {
	p := mustParse(t, tiny)
	if len(p.Params) != 1 || p.Params[0].Name != "N" {
		t.Fatalf("params = %+v", p.Params)
	}
	if p.Func("main") == nil {
		t.Fatal("no main")
	}
	if len(p.Func("main").Body.Stmts) != 5 {
		t.Fatalf("main has %d stmts", len(p.Func("main").Body.Stmts))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",                                  // no main
		"int main() { return 0; ",           // unterminated block
		"int main() { x = 1; }",             // fine parse, sema catches; skip
		"int main() { 3 = x; }",             // bad lvalue
		"int main() { if x { } }",           // missing paren
		"int main() { for i; i; i) {} }",    // bad for
		"int f() { return 0; }",             // no main
		"param double X; int main() {}",     // param must be int
		"int main() { double a[2] = 3.0; }", // array init
		"int main() { return 1 +; }",        // bad expr
		"int main() { @ }",                  // bad char
		"int main() { int x; x = 08; }",     // ok number? 08 parses as 8? strconv ParseInt("08")=8 fine; skip
		"int main() { /* unterminated",      // comment
	}
	for _, src := range cases {
		switch src {
		case "int main() { x = 1; }", "int main() { int x; x = 08; }":
			continue
		}
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse accepted %q", src)
		}
	}
}

func TestParsePrecedence(t *testing.T) {
	p := mustParse(t, "int main() { int x; x = 1 + 2 * 3; return x; }")
	as := p.Func("main").Body.Stmts[1].(*AssignStmt)
	b := as.RHS.(*Binary)
	if b.Op != "+" {
		t.Fatalf("top op = %q, want +", b.Op)
	}
	if r := b.R.(*Binary); r.Op != "*" {
		t.Fatalf("right op = %q, want *", r.Op)
	}
}

func TestParseComments(t *testing.T) {
	src := "// line\nint main() { /* block\n comment */ return 0; }\n"
	mustParse(t, src)
}

func TestParseIncDec(t *testing.T) {
	p := mustParse(t, "int main() { int i; for (i = 0; i < 3; i++) { } i--; return i; }")
	f := p.Func("main").Body.Stmts[1].(*ForStmt)
	post := f.Post.(*AssignStmt)
	if post.Op != "+" {
		t.Fatalf("i++ desugars to op %q", post.Op)
	}
}

func TestSemaUndeclared(t *testing.T) {
	p := mustParse(t, "int main() { x = 1; return 0; }")
	if _, err := Analyze(p, nil); err == nil || !strings.Contains(err.Error(), "undeclared") {
		t.Fatalf("err = %v, want undeclared", err)
	}
}

func TestSemaCommArity(t *testing.T) {
	p := mustParse(t, "int main() { p2psap_send(1); return 0; }")
	if _, err := Analyze(p, nil); err == nil || !strings.Contains(err.Error(), "argument") {
		t.Fatalf("err = %v, want arity error", err)
	}
}

func TestSemaUnknownFunction(t *testing.T) {
	p := mustParse(t, "int main() { frob(1); return 0; }")
	if _, err := Analyze(p, nil); err == nil || !strings.Contains(err.Error(), "undefined function") {
		t.Fatalf("err = %v", err)
	}
}

func TestSemaDuplicateGlobal(t *testing.T) {
	p := mustParse(t, "int g; int g; int main() { return 0; }")
	if _, err := Analyze(p, nil); err == nil {
		t.Fatal("duplicate global accepted")
	}
}

func TestSemaUnknownScaleParam(t *testing.T) {
	p := mustParse(t, tiny)
	if _, err := Analyze(p, []string{"ZZ"}); err == nil {
		t.Fatal("unknown scale param accepted")
	}
}

func TestTaintAndLoopScaling(t *testing.T) {
	src := `
param int N;
param int ROUNDS;
int main() {
    int i; int r; int half; int fixed;
    half = N / 2;
    fixed = 10;
    for (r = 0; r < ROUNDS; r++) {
        for (i = 0; i < half; i++) {
            fixed = fixed + 1;
        }
    }
    for (i = 0; i < fixed; i++) {
        fixed = fixed - 1;
    }
    return fixed;
}
`
	p, a := mustAnalyze(t, src, []string{"N"})
	main := p.Func("main")
	var loops []*ForStmt
	walkStmts(main.Body, func(s Stmt) {
		if f, ok := s.(*ForStmt); ok {
			loops = append(loops, f)
		}
	})
	if len(loops) != 3 {
		t.Fatalf("found %d loops", len(loops))
	}
	// Loop order: r (ROUNDS: not a scale param), i<half (scales),
	// i<fixed (fixed is not tainted by N).
	if loops[0].ScalesWithParam {
		t.Error("ROUNDS loop must not scale (not a scale param)")
	}
	if !loops[1].ScalesWithParam {
		t.Error("half loop must scale with N")
	}
	if loops[2].ScalesWithParam {
		t.Error("fixed loop must not scale")
	}
	if !a.Tainted["main"]["half"] {
		t.Error("half not tainted")
	}
	if a.Tainted["main"]["fixed"] {
		t.Error("fixed wrongly tainted")
	}
}

func TestBlockDepths(t *testing.T) {
	src := `
param int N;
int main() {
    int i; int j; int s;
    s = 0;
    for (i = 0; i < N; i++) {
        for (j = 0; j < N; j++) {
            s = s + 1;
        }
    }
    return s;
}
`
	p, a := mustAnalyze(t, src, []string{"N"})
	_ = p
	// Find the innermost straight block (s = s + 1): depth 2.
	maxDepth := 0
	for _, b := range a.Blocks {
		if b.Depth > maxDepth {
			maxDepth = b.Depth
		}
	}
	if maxDepth != 2 {
		t.Fatalf("max block depth = %d, want 2", maxDepth)
	}
}

func TestCommDetectionP2PSAPAndMPI(t *testing.T) {
	src := `
param int N;
int main() {
    int r; double x;
    r = p2psap_rank();
    r = p2psap_nprocs();
    if (r > 0) { p2psap_send(0, N); }
    if (r > 0) { p2psap_recv(0, N); }
    x = p2psap_allreduce_max(1.0);
    p2psap_barrier();
    MPI_Send(0, 5);
    MPI_Recv(0, 5);
    MPI_Barrier();
    return 0;
}
`
	_, a := mustAnalyze(t, src, []string{"N"})
	sum := a.CommSummary()
	if sum[CommSend] != 2 || sum[CommRecv] != 2 {
		t.Fatalf("send/recv counts: %v", sum)
	}
	if sum[CommBarrier] != 2 || sum[CommAllreduceMax] != 1 {
		t.Fatalf("barrier/allreduce counts: %v", sum)
	}
	if sum[CommRank] != 1 || sum[CommSize] != 1 {
		t.Fatalf("rank/size counts: %v", sum)
	}
	// The p2psap_send size argument is N: scaled.
	for _, c := range a.Comm {
		if c.Kind == CommSend && c.Call.Name == "p2psap_send" && !c.SizeScaled {
			t.Error("p2psap_send(0, N) should be size-scaled")
		}
		if c.Call.Name == "MPI_Send" && c.SizeScaled {
			t.Error("MPI_Send(0, 5) must not be size-scaled")
		}
	}
}

func TestUnparseRoundTrip(t *testing.T) {
	src := `
param int N;
double g[N + 2];
double helper(double x, double y) {
    return fmax(x, y) * 2.0;
}
int main() {
    int i; double s;
    s = 0.0;
    for (i = 0; i < N; i++) {
        if (g[i] > 0.0 && i % 2 == 0) {
            s = s + helper(g[i], 1.0);
        } else {
            s = s - 1.0;
        }
    }
    while (s > 100.0) {
        s = s / 2.0;
    }
    return 0;
}
`
	p1 := mustParse(t, src)
	out1 := Unparse(p1, nil)
	p2, err := Parse(out1)
	if err != nil {
		t.Fatalf("unparsed source does not reparse: %v\n%s", err, out1)
	}
	out2 := Unparse(p2, nil)
	if out1 != out2 {
		t.Fatalf("unparse not a fixed point:\n--- first\n%s\n--- second\n%s", out1, out2)
	}
}

func TestInstrumentedUnparseHasProbes(t *testing.T) {
	p, a := mustAnalyze(t, tiny, []string{"N"})
	out := Unparse(p, a)
	if !strings.Contains(out, "dperf_block_begin(") || !strings.Contains(out, "dperf_block_end(") {
		t.Fatalf("instrumented source lacks probes:\n%s", out)
	}
	if !strings.Contains(out, "/* dperf: scales with parameter */") {
		t.Fatalf("scaling loop not annotated:\n%s", out)
	}
}

func TestExprString(t *testing.T) {
	p := mustParse(t, "int main() { int x; x = (1 + 2) * 3 - -4; return x; }")
	as := p.Func("main").Body.Stmts[1].(*AssignStmt)
	got := ExprString(as.RHS)
	if got != "(1 + 2) * 3 - -4" {
		t.Fatalf("ExprString = %q", got)
	}
}

func TestCommKindNames(t *testing.T) {
	if CommKindOf("p2psap_send") != CommSend || CommKindOf("MPI_Allreduce") != CommAllreduceMax {
		t.Fatal("comm name table broken")
	}
	if CommKindOf("printf") != CommNone {
		t.Fatal("printf is not comm")
	}
	for _, k := range []CommKind{CommNone, CommRank, CommSize, CommSend, CommRecv, CommAllreduceMax, CommBarrier} {
		if k.String() == "?" {
			t.Fatalf("kind %d has no name", k)
		}
	}
}

// Property: the unparser is a fixed point on its own output for
// randomly structured (but valid) programs built from a template.
func TestPropertyUnparseFixedPoint(t *testing.T) {
	f := func(aRaw, bRaw uint8, deep bool) bool {
		a := int(aRaw%9) + 1
		b := int(bRaw%9) + 1
		inner := "s = s + 1;"
		if deep {
			inner = "if (s > 2) { s = s - 1; } else { s = s + 2; }"
		}
		src := "int main() { int s; int i; s = " +
			strings.Repeat("1 + ", a) + "0; for (i = 0; i < " +
			strings.Repeat("2 * ", b) + "1; i++) { " + inner + " } return s; }"
		p1, err := Parse(src)
		if err != nil {
			return false
		}
		o1 := Unparse(p1, nil)
		p2, err := Parse(o1)
		if err != nil {
			return false
		}
		return Unparse(p2, nil) == o1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestPositions(t *testing.T) {
	p := mustParse(t, "int main() {\n    return 0;\n}")
	ret := p.Func("main").Body.Stmts[0]
	if ret.Position().Line != 2 {
		t.Fatalf("return at line %d, want 2", ret.Position().Line)
	}
	if ret.Position().String() == "" {
		t.Fatal("empty position string")
	}
}
