package minic

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse builds the AST of a translation unit.
func Parse(src string) (*Program, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	prog, err := p.program()
	if err != nil {
		return nil, err
	}
	return prog, nil
}

type parser struct {
	toks []token
	i    int
}

func (p *parser) cur() token  { return p.toks[p.i] }
func (p *parser) peek() token { return p.toks[min(p.i+1, len(p.toks)-1)] }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) errf(format string, args ...interface{}) error {
	return fmt.Errorf("minic: %v: %s", p.cur().pos, fmt.Sprintf(format, args...))
}

func (p *parser) accept(kind tokKind, text string) bool {
	t := p.cur()
	if t.kind == kind && (text == "" || t.text == text) {
		p.i++
		return true
	}
	return false
}

func (p *parser) expect(kind tokKind, text string) (token, error) {
	t := p.cur()
	if t.kind != kind || (text != "" && t.text != text) {
		want := text
		if want == "" {
			want = fmt.Sprintf("token kind %d", kind)
		}
		return token{}, p.errf("expected %q, found %q", want, t.text)
	}
	p.i++
	return t, nil
}

func (p *parser) parseType() (Type, bool) {
	t := p.cur()
	if t.kind != tokKeyword {
		return TypeVoid, false
	}
	switch t.text {
	case "int":
		p.i++
		return TypeInt, true
	case "double":
		p.i++
		return TypeDouble, true
	case "void":
		p.i++
		return TypeVoid, true
	}
	return TypeVoid, false
}

func (p *parser) program() (*Program, error) {
	prog := &Program{}
	for p.cur().kind != tokEOF {
		if p.cur().kind == tokKeyword && p.cur().text == "param" {
			pos := p.cur().pos
			p.i++
			if _, err := p.expect(tokKeyword, "int"); err != nil {
				return nil, err
			}
			name, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
			prog.Params = append(prog.Params, &ParamDecl{Pos: pos, Name: name.text})
			continue
		}
		pos := p.cur().pos
		typ, ok := p.parseType()
		if !ok {
			return nil, p.errf("expected declaration, found %q", p.cur().text)
		}
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		if p.cur().kind == tokPunct && p.cur().text == "(" {
			fn, err := p.funcRest(pos, typ, name.text)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			continue
		}
		// Global variable(s).
		for {
			d, err := p.declaratorRest(pos, typ, name.text)
			if err != nil {
				return nil, err
			}
			prog.Globals = append(prog.Globals, &GlobalDecl{Pos: pos, Decl: d})
			if p.accept(tokPunct, ",") {
				n2, err := p.expect(tokIdent, "")
				if err != nil {
					return nil, err
				}
				name = n2
				continue
			}
			break
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
	}
	if prog.Func("main") == nil {
		return nil, fmt.Errorf("minic: program has no main function")
	}
	return prog, nil
}

// declaratorRest parses the array dims and optional init after a name.
func (p *parser) declaratorRest(pos Pos, typ Type, name string) (*DeclStmt, error) {
	d := &DeclStmt{Pos: pos, Type: typ, Name: name}
	for p.accept(tokPunct, "[") {
		dim, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		d.Dims = append(d.Dims, dim)
	}
	if p.accept(tokPunct, "=") {
		if len(d.Dims) > 0 {
			return nil, p.errf("array initializers are not supported")
		}
		init, err := p.expr()
		if err != nil {
			return nil, err
		}
		d.Init = init
	}
	return d, nil
}

func (p *parser) funcRest(pos Pos, ret Type, name string) (*FuncDecl, error) {
	if _, err := p.expect(tokPunct, "("); err != nil {
		return nil, err
	}
	fn := &FuncDecl{Pos: pos, Ret: ret, Name: name}
	if !p.accept(tokPunct, ")") {
		for {
			typ, ok := p.parseType()
			if !ok {
				return nil, p.errf("expected parameter type")
			}
			pn, err := p.expect(tokIdent, "")
			if err != nil {
				return nil, err
			}
			fn.Params = append(fn.Params, Param{Type: typ, Name: pn.text})
			if p.accept(tokPunct, ",") {
				continue
			}
			if _, err := p.expect(tokPunct, ")"); err != nil {
				return nil, err
			}
			break
		}
	}
	body, err := p.block()
	if err != nil {
		return nil, err
	}
	fn.Body = body
	return fn, nil
}

func (p *parser) block() (*BlockStmt, error) {
	open, err := p.expect(tokPunct, "{")
	if err != nil {
		return nil, err
	}
	b := &BlockStmt{Pos: open.pos}
	for !p.accept(tokPunct, "}") {
		if p.cur().kind == tokEOF {
			return nil, p.errf("unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

// blockOrSingle wraps a single statement in a block for uniform bodies.
func (p *parser) blockOrSingle() (*BlockStmt, error) {
	if p.cur().kind == tokPunct && p.cur().text == "{" {
		return p.block()
	}
	s, err := p.stmt()
	if err != nil {
		return nil, err
	}
	return &BlockStmt{Pos: s.Position(), Stmts: []Stmt{s}}, nil
}

func (p *parser) stmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.kind == tokKeyword && (t.text == "int" || t.text == "double"):
		typ, _ := p.parseType()
		name, err := p.expect(tokIdent, "")
		if err != nil {
			return nil, err
		}
		d, err := p.declaratorRest(t.pos, typ, name.text)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return d, nil
	case t.kind == tokKeyword && t.text == "if":
		p.i++
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.blockOrSingle()
		if err != nil {
			return nil, err
		}
		st := &IfStmt{Pos: t.pos, Cond: cond, Then: then}
		if p.cur().kind == tokKeyword && p.cur().text == "else" {
			p.i++
			els, err := p.blockOrSingle()
			if err != nil {
				return nil, err
			}
			st.Else = els
		}
		return st, nil
	case t.kind == tokKeyword && t.text == "for":
		p.i++
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		var init Stmt
		if !p.accept(tokPunct, ";") {
			s, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			init = s
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
		}
		var cond Expr
		if !p.accept(tokPunct, ";") {
			c, err := p.expr()
			if err != nil {
				return nil, err
			}
			cond = c
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
		}
		var post Stmt
		if p.cur().kind != tokPunct || p.cur().text != ")" {
			s, err := p.simpleStmt()
			if err != nil {
				return nil, err
			}
			post = s
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.blockOrSingle()
		if err != nil {
			return nil, err
		}
		return &ForStmt{Pos: t.pos, Init: init, Cond: cond, Post: post, Body: body}, nil
	case t.kind == tokKeyword && t.text == "while":
		p.i++
		if _, err := p.expect(tokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.blockOrSingle()
		if err != nil {
			return nil, err
		}
		return &WhileStmt{Pos: t.pos, Cond: cond, Body: body}, nil
	case t.kind == tokKeyword && t.text == "return":
		p.i++
		st := &ReturnStmt{Pos: t.pos}
		if !p.accept(tokPunct, ";") {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			st.X = x
			if _, err := p.expect(tokPunct, ";"); err != nil {
				return nil, err
			}
		}
		return st, nil
	case t.kind == tokPunct && t.text == "{":
		return p.block()
	default:
		s, err := p.simpleStmt()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil
	}
}

// simpleStmt parses an assignment, ++/--, or expression statement.
func (p *parser) simpleStmt() (Stmt, error) {
	pos := p.cur().pos
	lhs, err := p.expr()
	if err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind == tokPunct {
		switch t.text {
		case "=", "+=", "-=", "*=", "/=":
			if !isLValue(lhs) {
				return nil, p.errf("left side of %q is not assignable", t.text)
			}
			op := ""
			if t.text != "=" {
				op = strings.TrimSuffix(t.text, "=")
			}
			p.i++
			rhs, err := p.expr()
			if err != nil {
				return nil, err
			}
			return &AssignStmt{Pos: pos, LHS: lhs, Op: op, RHS: rhs}, nil
		case "++", "--":
			if !isLValue(lhs) {
				return nil, p.errf("operand of %q is not assignable", t.text)
			}
			op := "+"
			if t.text == "--" {
				op = "-"
			}
			p.i++
			one := &NumLit{Pos: t.pos, Int: 1, Raw: "1"}
			return &AssignStmt{Pos: pos, LHS: lhs, Op: op, RHS: one}, nil
		}
	}
	if _, ok := lhs.(*Call); !ok {
		return nil, p.errf("expression statement must be a call")
	}
	return &ExprStmt{Pos: pos, X: lhs}, nil
}

func isLValue(e Expr) bool {
	switch e.(type) {
	case *Ident, *Index:
		return true
	}
	return false
}

// --- expression parsing with precedence climbing ---

var binPrec = map[string]int{
	"||": 1,
	"&&": 2,
	"==": 3, "!=": 3,
	"<": 4, ">": 4, "<=": 4, ">=": 4,
	"+": 5, "-": 5,
	"*": 6, "/": 6, "%": 6,
}

func (p *parser) expr() (Expr, error) { return p.binExpr(1) }

func (p *parser) binExpr(minPrec int) (Expr, error) {
	lhs, err := p.unary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct {
			return lhs, nil
		}
		prec, ok := binPrec[t.text]
		if !ok || prec < minPrec {
			return lhs, nil
		}
		p.i++
		rhs, err := p.binExpr(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &Binary{Pos: t.pos, Op: t.text, L: lhs, R: rhs}
	}
}

func (p *parser) unary() (Expr, error) {
	t := p.cur()
	if t.kind == tokPunct && (t.text == "-" || t.text == "!") {
		p.i++
		x, err := p.unary()
		if err != nil {
			return nil, err
		}
		return &Unary{Pos: t.pos, Op: t.text, X: x}, nil
	}
	return p.postfix()
}

func (p *parser) postfix() (Expr, error) {
	e, err := p.primary()
	if err != nil {
		return nil, err
	}
	for {
		t := p.cur()
		if t.kind != tokPunct || t.text != "[" {
			return e, nil
		}
		p.i++
		idx, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, "]"); err != nil {
			return nil, err
		}
		e = &Index{Pos: t.pos, Base: e, Idx: idx}
	}
}

func (p *parser) primary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tokNum:
		p.i++
		if strings.ContainsAny(t.text, ".eE") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, p.errf("bad float %q", t.text)
			}
			return &NumLit{Pos: t.pos, IsFloat: true, Float: f, Raw: t.text}, nil
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("bad integer %q", t.text)
		}
		return &NumLit{Pos: t.pos, Int: v, Raw: t.text}, nil
	case t.kind == tokIdent:
		p.i++
		if p.cur().kind == tokPunct && p.cur().text == "(" {
			p.i++
			call := &Call{Pos: t.pos, Name: t.text}
			if !p.accept(tokPunct, ")") {
				for {
					a, err := p.expr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if p.accept(tokPunct, ",") {
						continue
					}
					if _, err := p.expect(tokPunct, ")"); err != nil {
						return nil, err
					}
					break
				}
			}
			return call, nil
		}
		return &Ident{Pos: t.pos, Name: t.text}, nil
	case t.kind == tokPunct && t.text == "(":
		p.i++
		e, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokPunct, ")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, p.errf("unexpected token %q in expression", t.text)
}
