// Package minic is the dPerf source front-end: a lexer, parser and
// analyzer for a C subset rich enough to express the paper's
// distributed numerical kernels (the obstacle problem among them). It
// stands in for the ROSE compiler infrastructure: it builds an AST,
// decomposes function bodies into basic blocks, detects communication
// calls (both P2PSAP and MPI spellings), computes which loops scale
// with declared parameters, and unparses an instrumented source —
// dPerf's automatic static analysis and source-to-source
// transformation (paper §III-D).
package minic

import "fmt"

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Type is a mini-C type.
type Type int

// Types.
const (
	TypeVoid Type = iota
	TypeInt
	TypeDouble
)

func (t Type) String() string {
	switch t {
	case TypeVoid:
		return "void"
	case TypeInt:
		return "int"
	case TypeDouble:
		return "double"
	}
	return "?"
}

// --- Expressions ---

// Expr is any expression node.
type Expr interface {
	exprNode()
	Position() Pos
}

// NumLit is an integer or floating literal.
type NumLit struct {
	Pos     Pos
	IsFloat bool
	Int     int64
	Float   float64
	Raw     string
}

// Ident references a variable or parameter.
type Ident struct {
	Pos  Pos
	Name string
}

// Index is arr[i] or arr[i][j] (one node per bracket).
type Index struct {
	Pos  Pos
	Base Expr
	Idx  Expr
}

// Call is a function or intrinsic call.
type Call struct {
	Pos  Pos
	Name string
	Args []Expr
}

// Unary is -x or !x.
type Unary struct {
	Pos Pos
	Op  string
	X   Expr
}

// Binary is x op y.
type Binary struct {
	Pos  Pos
	Op   string
	L, R Expr
}

func (*NumLit) exprNode() {}
func (*Ident) exprNode()  {}
func (*Index) exprNode()  {}
func (*Call) exprNode()   {}
func (*Unary) exprNode()  {}
func (*Binary) exprNode() {}

// Position implements Expr.
func (e *NumLit) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *Ident) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *Index) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *Call) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *Unary) Position() Pos { return e.Pos }

// Position implements Expr.
func (e *Binary) Position() Pos { return e.Pos }

// --- Statements ---

// Stmt is any statement node.
type Stmt interface {
	stmtNode()
	Position() Pos
}

// DeclStmt declares a scalar or array variable.
type DeclStmt struct {
	Pos  Pos
	Type Type
	Name string
	// Dims is empty for scalars; expressions for array dimensions
	// (evaluated at elaboration, VLA-style).
	Dims []Expr
	// Init is the optional scalar initializer.
	Init Expr
}

// AssignStmt is lvalue op= expr (op "" means plain "=").
type AssignStmt struct {
	Pos Pos
	LHS Expr // Ident or Index chain
	Op  string
	RHS Expr
}

// ExprStmt is a bare call expression.
type ExprStmt struct {
	Pos Pos
	X   Expr
}

// IfStmt with optional else.
type IfStmt struct {
	Pos  Pos
	Cond Expr
	Then *BlockStmt
	Else *BlockStmt // nil when absent
}

// ForStmt is for(init; cond; post) body.
type ForStmt struct {
	Pos  Pos
	Init Stmt // AssignStmt or DeclStmt or nil
	Cond Expr
	Post Stmt // AssignStmt or nil
	Body *BlockStmt

	// ScalesWithParam is set by analysis when the trip count grows
	// with a declared parameter (dPerf scale-up marking).
	ScalesWithParam bool
}

// WhileStmt is while(cond) body.
type WhileStmt struct {
	Pos  Pos
	Cond Expr
	Body *BlockStmt
}

// ReturnStmt returns an optional value.
type ReturnStmt struct {
	Pos Pos
	X   Expr // may be nil
}

// BlockStmt is { stmts }.
type BlockStmt struct {
	Pos   Pos
	Stmts []Stmt
}

func (*DeclStmt) stmtNode()   {}
func (*AssignStmt) stmtNode() {}
func (*ExprStmt) stmtNode()   {}
func (*IfStmt) stmtNode()     {}
func (*ForStmt) stmtNode()    {}
func (*WhileStmt) stmtNode()  {}
func (*ReturnStmt) stmtNode() {}
func (*BlockStmt) stmtNode()  {}

// Position implements Stmt.
func (s *DeclStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *AssignStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *ExprStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *IfStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *ForStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *WhileStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *ReturnStmt) Position() Pos { return s.Pos }

// Position implements Stmt.
func (s *BlockStmt) Position() Pos { return s.Pos }

// --- Top level ---

// Param is a function parameter.
type Param struct {
	Type Type
	Name string
}

// FuncDecl is a function definition.
type FuncDecl struct {
	Pos    Pos
	Ret    Type
	Name   string
	Params []Param
	Body   *BlockStmt
}

// GlobalDecl is a file-scope variable (scalars and arrays).
type GlobalDecl struct {
	Pos  Pos
	Decl *DeclStmt
}

// ParamDecl declares a tunable analysis parameter (`param int N;`):
// its value is supplied by the dPerf driver, and loops bounded by it
// are the ones block benchmarking scales up.
type ParamDecl struct {
	Pos  Pos
	Name string
}

// Program is a parsed translation unit.
type Program struct {
	Params  []*ParamDecl
	Globals []*GlobalDecl
	Funcs   []*FuncDecl
}

// Func returns the function with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	return nil
}

// CommKind classifies recognized communication intrinsics.
type CommKind int

// Communication operation kinds dPerf recognizes.
const (
	CommNone         CommKind = iota
	CommRank                  // query: own rank
	CommSize                  // query: process count
	CommSend                  // p2psap_send(peer, doubles) / MPI_Send
	CommRecv                  // p2psap_recv(peer, doubles) / MPI_Recv
	CommAllreduceMax          // p2psap_allreduce_max(x) / MPI_Allreduce
	CommBarrier               // p2psap_barrier() / MPI_Barrier
)

func (k CommKind) String() string {
	switch k {
	case CommNone:
		return "none"
	case CommRank:
		return "rank"
	case CommSize:
		return "size"
	case CommSend:
		return "send"
	case CommRecv:
		return "recv"
	case CommAllreduceMax:
		return "allreduce_max"
	case CommBarrier:
		return "barrier"
	}
	return "?"
}

// commNames maps the P2PSAP and MPI spellings dPerf is "customizable
// for recognizing" (paper §III-D.2) onto CommKind.
var commNames = map[string]CommKind{
	"p2psap_rank":          CommRank,
	"p2psap_nprocs":        CommSize,
	"p2psap_send":          CommSend,
	"p2psap_recv":          CommRecv,
	"p2psap_allreduce_max": CommAllreduceMax,
	"p2psap_barrier":       CommBarrier,
	"MPI_Comm_rank":        CommRank,
	"MPI_Comm_size":        CommSize,
	"MPI_Send":             CommSend,
	"MPI_Recv":             CommRecv,
	"MPI_Allreduce":        CommAllreduceMax,
	"MPI_Barrier":          CommBarrier,
}

// CommKindOf returns the communication kind of a callee name.
func CommKindOf(name string) CommKind { return commNames[name] }

// mathBuiltins are pure intrinsic functions.
var mathBuiltins = map[string]bool{
	"fabs": true, "fmax": true, "fmin": true, "sqrt": true,
}

// IsBuiltin reports whether name is a math intrinsic.
func IsBuiltin(name string) bool { return mathBuiltins[name] }
