package minic

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// tokKind enumerates token kinds.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokNum
	tokPunct   // operators and delimiters
	tokKeyword // int double void if else for while return param
)

var keywords = map[string]bool{
	"int": true, "double": true, "void": true,
	"if": true, "else": true, "for": true, "while": true,
	"return": true, "param": true,
}

type token struct {
	kind tokKind
	text string
	pos  Pos
}

// lexer turns source text into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
	toks []token
}

// lex tokenizes the whole input up front.
func lex(src string) ([]token, error) {
	lx := &lexer{src: src, line: 1, col: 1}
	for {
		tok, err := lx.next()
		if err != nil {
			return nil, err
		}
		lx.toks = append(lx.toks, tok)
		if tok.kind == tokEOF {
			return lx.toks, nil
		}
	}
}

func (lx *lexer) peekByte() byte {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *lexer) advance() byte {
	c := lx.src[lx.off]
	lx.off++
	if c == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return c
}

func (lx *lexer) skipSpaceAndComments() error {
	for lx.off < len(lx.src) {
		c := lx.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.advance()
		case c == '/' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '/':
			for lx.off < len(lx.src) && lx.peekByte() != '\n' {
				lx.advance()
			}
		case c == '/' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '*':
			start := Pos{lx.line, lx.col}
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peekByte() == '*' && lx.off+1 < len(lx.src) && lx.src[lx.off+1] == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				return fmt.Errorf("minic: %v: unterminated block comment", start)
			}
		default:
			return nil
		}
	}
	return nil
}

// multi-char punctuation, longest first.
var puncts = []string{
	"<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=", "++", "--",
	"+", "-", "*", "/", "%", "<", ">", "=", "!", "(", ")", "[", "]", "{", "}", ";", ",",
}

func (lx *lexer) next() (token, error) {
	if err := lx.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	pos := Pos{lx.line, lx.col}
	if lx.off >= len(lx.src) {
		return token{kind: tokEOF, pos: pos}, nil
	}
	c := lx.peekByte()
	switch {
	case unicode.IsLetter(rune(c)) || c == '_':
		start := lx.off
		for lx.off < len(lx.src) {
			b := lx.peekByte()
			if unicode.IsLetter(rune(b)) || unicode.IsDigit(rune(b)) || b == '_' {
				lx.advance()
			} else {
				break
			}
		}
		text := lx.src[start:lx.off]
		kind := tokIdent
		if keywords[text] {
			kind = tokKeyword
		}
		return token{kind: kind, text: text, pos: pos}, nil
	case unicode.IsDigit(rune(c)) || (c == '.' && lx.off+1 < len(lx.src) && unicode.IsDigit(rune(lx.src[lx.off+1]))):
		start := lx.off
		seenDot, seenExp := false, false
		for lx.off < len(lx.src) {
			b := lx.peekByte()
			switch {
			case unicode.IsDigit(rune(b)):
				lx.advance()
			case b == '.' && !seenDot && !seenExp:
				seenDot = true
				lx.advance()
			case (b == 'e' || b == 'E') && !seenExp:
				seenExp = true
				lx.advance()
				if n := lx.peekByte(); n == '+' || n == '-' {
					lx.advance()
				}
			default:
				goto doneNum
			}
		}
	doneNum:
		text := lx.src[start:lx.off]
		if _, err := strconv.ParseFloat(text, 64); err != nil {
			return token{}, fmt.Errorf("minic: %v: bad number %q", pos, text)
		}
		return token{kind: tokNum, text: text, pos: pos}, nil
	default:
		rest := lx.src[lx.off:]
		for _, p := range puncts {
			if strings.HasPrefix(rest, p) {
				for range p {
					lx.advance()
				}
				return token{kind: tokPunct, text: p, pos: pos}, nil
			}
		}
		return token{}, fmt.Errorf("minic: %v: unexpected character %q", pos, string(c))
	}
}
