package minic

import (
	"fmt"
	"strings"
)

// Unparse renders the AST back to source. When an Analysis is given,
// the output is the *instrumented* source: every basic block is
// bracketed with dperf_block_begin/dperf_block_end probe calls, the
// paper's automatic instrumentation step (calls to the PAPI-based
// timing runtime in the original tool).
func Unparse(prog *Program, a *Analysis) string {
	u := &unparser{a: a}
	for _, pd := range prog.Params {
		u.printf("param int %s;\n", pd.Name)
	}
	for _, g := range prog.Globals {
		u.indentNow()
		u.declText(g.Decl)
		u.printf(";\n")
	}
	for _, fn := range prog.Funcs {
		u.printf("\n%s %s(", fn.Ret, fn.Name)
		for i, p := range fn.Params {
			if i > 0 {
				u.printf(", ")
			}
			u.printf("%s %s", p.Type, p.Name)
		}
		u.printf(") ")
		u.blockText(fn.Body)
		u.printf("\n")
	}
	return u.sb.String()
}

type unparser struct {
	sb     strings.Builder
	indent int
	a      *Analysis
	// openBlock tracks the currently open instrumented block ID (-1
	// when none).
	openBlock int
}

func (u *unparser) printf(format string, args ...interface{}) {
	fmt.Fprintf(&u.sb, format, args...)
}

func (u *unparser) indentNow() {
	for i := 0; i < u.indent; i++ {
		u.sb.WriteString("    ")
	}
}

func (u *unparser) line(format string, args ...interface{}) {
	u.indentNow()
	u.printf(format, args...)
	u.sb.WriteByte('\n')
}

func (u *unparser) declText(d *DeclStmt) {
	u.printf("%s %s", d.Type, d.Name)
	for _, dim := range d.Dims {
		u.printf("[%s", ExprString(dim))
		u.printf("]")
	}
	if d.Init != nil {
		u.printf(" = %s", ExprString(d.Init))
	}
}

func (u *unparser) blockText(b *BlockStmt) {
	u.printf("{\n")
	u.indent++
	open := -1
	closeOpen := func() {
		if open >= 0 {
			u.line("dperf_block_end(%d);", open)
			open = -1
		}
	}
	for _, s := range b.Stmts {
		if u.a != nil {
			id, hasID := u.a.StmtBlock[s]
			straight := hasID && !stmtBreaksBlock(s) && u.a.Block(id).Kind == "straight"
			if straight {
				if open != id {
					closeOpen()
					u.line("dperf_block_begin(%d);", id)
					open = id
				}
			} else {
				closeOpen()
			}
		}
		u.stmtText(s)
	}
	closeOpen()
	u.indent--
	u.indentNow()
	u.printf("}")
}

func (u *unparser) stmtText(s Stmt) {
	switch st := s.(type) {
	case *DeclStmt:
		u.indentNow()
		u.declText(st)
		u.printf(";\n")
	case *AssignStmt:
		u.indentNow()
		u.printf("%s %s= %s;\n", ExprString(st.LHS), st.Op, ExprString(st.RHS))
	case *ExprStmt:
		u.line("%s;", ExprString(st.X))
	case *IfStmt:
		u.indentNow()
		u.printf("if (%s) ", ExprString(st.Cond))
		u.blockText(st.Then)
		if st.Else != nil {
			u.printf(" else ")
			u.blockText(st.Else)
		}
		u.printf("\n")
	case *ForStmt:
		u.indentNow()
		u.printf("for (")
		if st.Init != nil {
			u.inlineSimple(st.Init)
		}
		u.printf("; ")
		if st.Cond != nil {
			u.printf("%s", ExprString(st.Cond))
		}
		u.printf("; ")
		if st.Post != nil {
			u.inlineSimple(st.Post)
		}
		u.printf(") ")
		if u.a != nil && st.ScalesWithParam {
			u.printf("/* dperf: scales with parameter */ ")
		}
		u.blockText(st.Body)
		u.printf("\n")
	case *WhileStmt:
		u.indentNow()
		u.printf("while (%s) ", ExprString(st.Cond))
		u.blockText(st.Body)
		u.printf("\n")
	case *ReturnStmt:
		if st.X != nil {
			u.line("return %s;", ExprString(st.X))
		} else {
			u.line("return;")
		}
	case *BlockStmt:
		u.indentNow()
		u.blockText(st)
		u.printf("\n")
	}
}

// inlineSimple prints an init/post clause without indentation or
// trailing semicolon.
func (u *unparser) inlineSimple(s Stmt) {
	switch st := s.(type) {
	case *AssignStmt:
		u.printf("%s %s= %s", ExprString(st.LHS), st.Op, ExprString(st.RHS))
	case *DeclStmt:
		u.declText(st)
	case *ExprStmt:
		u.printf("%s", ExprString(st.X))
	}
}

// ExprString renders an expression with minimal parentheses.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case *NumLit:
		if x.Raw != "" {
			return x.Raw
		}
		if x.IsFloat {
			return fmt.Sprintf("%g", x.Float)
		}
		return fmt.Sprintf("%d", x.Int)
	case *Ident:
		return x.Name
	case *Index:
		return fmt.Sprintf("%s[%s]", ExprString(x.Base), ExprString(x.Idx))
	case *Unary:
		return fmt.Sprintf("%s%s", x.Op, parenIfBinary(x.X))
	case *Binary:
		return fmt.Sprintf("%s %s %s", parenIfLower(x.L, x.Op), x.Op, parenIfLowerEq(x.R, x.Op))
	case *Call:
		args := make([]string, len(x.Args))
		for i, a := range x.Args {
			args[i] = ExprString(a)
		}
		return fmt.Sprintf("%s(%s)", x.Name, strings.Join(args, ", "))
	}
	return "?"
}

func parenIfBinary(e Expr) string {
	if _, ok := e.(*Binary); ok {
		return "(" + ExprString(e) + ")"
	}
	return ExprString(e)
}

func parenIfLower(e Expr, parentOp string) string {
	if b, ok := e.(*Binary); ok && binPrec[b.Op] < binPrec[parentOp] {
		return "(" + ExprString(e) + ")"
	}
	return ExprString(e)
}

func parenIfLowerEq(e Expr, parentOp string) string {
	if b, ok := e.(*Binary); ok && binPrec[b.Op] <= binPrec[parentOp] {
		return "(" + ExprString(e) + ")"
	}
	return ExprString(e)
}
