package costmodel

import (
	"testing"
	"testing/quick"
)

func TestLevelStringsAndParse(t *testing.T) {
	for _, l := range Levels {
		s := l.String()
		got, err := ParseLevel(s)
		if err != nil || got != l {
			t.Errorf("round trip %v -> %q -> %v, %v", l, s, got, err)
		}
	}
	for in, want := range map[string]Level{"0": O0, "3": O3, "s": Os, "O2": O2, "o1": O1} {
		got, err := ParseLevel(in)
		if err != nil || got != want {
			t.Errorf("ParseLevel(%q) = %v, %v", in, got, err)
		}
	}
	if _, err := ParseLevel("9"); err == nil {
		t.Error("level 9 accepted")
	}
	if Level(42).String() == "" {
		t.Error("unknown level has empty name")
	}
}

func TestFactorOrdering(t *testing.T) {
	// Fig. 9: O0 slowest, O3 fastest, Os between O1 and O2 (size
	// optimization trades a little speed for footprint).
	if !(O0.Factor() > O1.Factor() && O1.Factor() > Os.Factor() &&
		Os.Factor() > O2.Factor() && O2.Factor() > O3.Factor()) {
		t.Fatalf("factor ordering broken: O0=%v O1=%v Os=%v O2=%v O3=%v",
			O0.Factor(), O1.Factor(), Os.Factor(), O2.Factor(), O3.Factor())
	}
	if O0.Factor() != 1.0 {
		t.Fatal("O0 must be the baseline")
	}
}

func TestCyclesScaleUniformly(t *testing.T) {
	ops := []Op{OpLoad, OpStore, OpAddSub, OpMul, OpDiv, OpCmp, OpBranch, OpIndex, OpCall, OpLoop, OpAssign}
	for _, op := range ops {
		base := Cycles(op, O0)
		if base <= 0 {
			t.Fatalf("op %d has non-positive base cost", op)
		}
		for _, l := range Levels {
			want := base * l.Factor()
			if got := Cycles(op, l); got != want {
				t.Fatalf("Cycles(%d, %v) = %v, want %v", op, l, got, want)
			}
		}
	}
	if Cycles(Op(999), O0) != 0 {
		t.Fatal("unknown op should cost 0")
	}
}

func TestSeconds(t *testing.T) {
	if Seconds(CPUHz) != 1.0 {
		t.Fatal("CPUHz cycles must be one second")
	}
}

func TestObstacleCellCyclesCalibration(t *testing.T) {
	// The hand-counted kernel cost must stay close to what the dPerf
	// interpreter measures (~86.5 cycles at O0); a drift larger than
	// 10% would make Fig. 10's prediction visibly wrong.
	c := ObstacleCellCycles(O0)
	if c < 75 || c > 95 {
		t.Fatalf("O0 cell cost = %v, expected in [75, 95] (see costmodel.go)", c)
	}
	// And it must scale exactly with the level factor.
	for _, l := range Levels {
		want := c * l.Factor()
		if got := ObstacleCellCycles(l); got != want {
			t.Fatalf("cell cycles at %v = %v, want %v", l, got, want)
		}
	}
}

// Property: level factors are within (0, 1] and Cycles is monotone in
// the factor for every op.
func TestPropertyCyclesMonotone(t *testing.T) {
	f := func(opRaw uint8) bool {
		op := Op(int(opRaw) % 11)
		prev := Cycles(op, O0)
		for _, l := range []Level{O1, Os, O2, O3} {
			cur := Cycles(op, l)
			if cur > prev || cur < 0 {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
