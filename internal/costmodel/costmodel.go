// Package costmodel is the deterministic virtual-hardware cost model
// that replaces PAPI hardware counters and GCC optimization levels in
// this reproduction. Every abstract machine operation has a cycle
// cost at optimization level O0; each GCC level scales those costs by
// a calibrated factor, mirroring how the paper treats compiler levels
// as black-box multipliers on block execution time. The native
// obstacle solver and the dPerf mini-C interpreter both charge work
// through this package, so reference and predicted times share one
// physical model while differing in how they account it (hand-counted
// kernel cost vs. per-operation interpretation) — which is exactly
// the source of dPerf's small prediction error.
package costmodel

import (
	"fmt"
	"strings"
)

// Level is a GCC optimization level (paper §IV-A.2: "0, 1, 2, 3, s").
type Level int

// The five levels used throughout the evaluation.
const (
	O0 Level = iota
	O1
	O2
	O3
	Os
)

// Levels lists all levels in the paper's order.
var Levels = []Level{O0, O1, O2, O3, Os}

func (l Level) String() string {
	switch l {
	case O0:
		return "O0"
	case O1:
		return "O1"
	case O2:
		return "O2"
	case O3:
		return "O3"
	case Os:
		return "Os"
	}
	return fmt.Sprintf("Level(%d)", int(l))
}

// ParseLevel accepts "0", "O0", "o0", "s", "Os"...
func ParseLevel(s string) (Level, error) {
	t := strings.ToLower(strings.TrimPrefix(strings.ToLower(s), "o"))
	switch t {
	case "0":
		return O0, nil
	case "1":
		return O1, nil
	case "2":
		return O2, nil
	case "3":
		return O3, nil
	case "s":
		return Os, nil
	}
	return O0, fmt.Errorf("costmodel: unknown optimization level %q", s)
}

// Factor returns the calibrated speed multiplier of the level relative
// to O0. The ordering O0 > Os > O1 > O2 > O3 matches Fig. 9, where
// every optimized build beats O0 and O3 is fastest.
func (l Level) Factor() float64 {
	switch l {
	case O0:
		return 1.00
	case O1:
		return 0.46
	case O2:
		return 0.38
	case O3:
		return 0.33
	case Os:
		return 0.42
	}
	return 1.0
}

// Op is an abstract machine operation.
type Op int

// Operation kinds charged by the interpreter and the hand-counted
// kernels.
const (
	OpLoad   Op = iota // memory read
	OpStore            // memory write
	OpAddSub           // fp/int add or subtract
	OpMul              // multiply
	OpDiv              // divide
	OpCmp              // comparison
	OpBranch           // conditional jump
	OpIndex            // array index arithmetic
	OpCall             // function call overhead
	OpLoop             // per-iteration loop bookkeeping
	OpAssign           // register move / scalar assignment
)

// baseCycles is the O0 cost table (cycles per operation).
var baseCycles = [...]float64{
	OpLoad:   3,
	OpStore:  3,
	OpAddSub: 1,
	OpMul:    2,
	OpDiv:    12,
	OpCmp:    1,
	OpBranch: 2,
	OpIndex:  2,
	OpCall:   10,
	OpLoop:   3,
	OpAssign: 1,
}

// Cycles returns the cost of one operation at the given level.
func Cycles(op Op, l Level) float64 {
	if int(op) < 0 || int(op) >= len(baseCycles) {
		return 0
	}
	return baseCycles[op] * l.Factor()
}

// CPUHz is the virtual clock rate of one Bordeplage-class node; it
// matches platform.NodeSpeed so "cycles / CPUHz" and "flops / speed"
// agree.
const CPUHz = 3e9

// Seconds converts a cycle count at a level into wall time on one
// virtual node.
func Seconds(cycles float64) float64 { return cycles / CPUHz }

// ObstacleCellCycles is the hand-counted cost of one projected-Jacobi
// cell update in the native solver:
//
//	v = 0.25*(u[i-1][j]+u[i+1][j]+u[i][j-1]+u[i][j+1]) + q
//	if in obstacle box and v < psi { v = psi }
//	res = fmax(res, fabs(v - u[i][j])); u'[i][j] = v
//
// Itemized against an unoptimized (O0) compilation of the C kernel:
// four neighbour reads (load + 2D address arithmetic + offset add),
// the stencil combine, the obstacle box test, the projection branch,
// the residual update (one more read, subtract, abs, max), the store
// and the inner-loop bookkeeping. This is the "ground truth" cost the
// reference execution charges; dPerf instead derives block costs by
// interpreting the instrumented mini-C kernel operation by operation
// and lands close to — but not exactly on — this number, which is
// precisely the prediction error visible in Fig. 10.
func ObstacleCellCycles(l Level) float64 {
	neighbourReads := 4 * (baseCycles[OpLoad] + 3*baseCycles[OpIndex] + baseCycles[OpAddSub])
	combine := 3*baseCycles[OpAddSub] + baseCycles[OpMul] + baseCycles[OpAddSub]
	boxTest := 4*baseCycles[OpCmp] + 2*baseCycles[OpBranch] + baseCycles[OpAssign] + 3*baseCycles[OpCmp]
	projection := baseCycles[OpCmp] + baseCycles[OpBranch]
	residual := baseCycles[OpLoad] + 3*baseCycles[OpIndex] + 3*baseCycles[OpAddSub] + baseCycles[OpAssign]
	store := 3*baseCycles[OpIndex] + baseCycles[OpStore]
	loop := baseCycles[OpCmp] + baseCycles[OpLoop] + baseCycles[OpAddSub] + baseCycles[OpAssign]
	c := neighbourReads + combine + boxTest + projection + residual + store + loop
	return c * l.Factor()
}
