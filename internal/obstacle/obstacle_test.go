package obstacle

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/costmodel"
	"repro/internal/p2pdc"
	"repro/internal/p2psap"
	"repro/internal/platform"
)

func TestStripOfCoversGrid(t *testing.T) {
	for _, tc := range []struct{ n, p int }{{10, 3}, {16, 4}, {7, 7}, {100, 1}, {5, 2}} {
		covered := 0
		prevHi := 0
		for r := 0; r < tc.p; r++ {
			lo, hi := StripOf(tc.n, tc.p, r)
			if lo != prevHi {
				t.Fatalf("n=%d p=%d r=%d: lo=%d, want %d", tc.n, tc.p, r, lo, prevHi)
			}
			covered += hi - lo
			prevHi = hi
		}
		if covered != tc.n || prevHi != tc.n {
			t.Fatalf("n=%d p=%d: covered %d rows", tc.n, tc.p, covered)
		}
	}
}

func TestPropertyStripBalanced(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw)%200 + 1
		p := int(pRaw)%32 + 1
		if p > n {
			p = n
		}
		minRows, maxRows := n, 0
		total := 0
		for r := 0; r < p; r++ {
			lo, hi := StripOf(n, p, r)
			rows := hi - lo
			if rows < minRows {
				minRows = rows
			}
			if rows > maxRows {
				maxRows = rows
			}
			total += rows
		}
		return total == n && maxRows-minRows <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSerialSolveConverges(t *testing.T) {
	cfg := Config{Problem: DefaultProblem(24), Rounds: 4000, Sweeps: 1, Tol: 1e-10, Numerics: true}
	u, res := SerialSolve(cfg)
	if res > 1e-10 {
		t.Fatalf("did not converge: residual %v", res)
	}
	// Solution respects the obstacle.
	pb := cfg.Problem
	for i := 1; i <= pb.N; i++ {
		for j := 1; j <= pb.N; j++ {
			if u[i][j] < pb.Psi(i-1, j-1)-1e-12 {
				t.Fatalf("u[%d][%d]=%v below obstacle %v", i, j, u[i][j], pb.Psi(i-1, j-1))
			}
		}
	}
	// Obstacle actually binds somewhere (otherwise the test is vacuous).
	mid := pb.N / 2
	if u[mid][mid] < pb.ObstacleHeight-1e-9 {
		t.Fatalf("plateau centre %v below obstacle height", u[mid][mid])
	}
}

func TestSerialNontrivialWithoutObstacle(t *testing.T) {
	cfg := Config{Problem: Problem{N: 16, Force: 1e-3}, Rounds: 2000, Sweeps: 1, Tol: 1e-12, Numerics: true}
	u, _ := SerialSolve(cfg)
	if u[8][8] <= 0 {
		t.Fatal("interior solution should be positive with positive force")
	}
}

// runDistributed executes the distributed solver on a small cluster in
// numerics mode and returns the residual trace from rank 0.
func runDistributed(t *testing.T, peers, n, rounds, sweeps int) float64 {
	t.Helper()
	plat, err := platform.Cluster(peers)
	if err != nil {
		t.Fatal(err)
	}
	env, err := p2pdc.NewEnvironment(plat)
	if err != nil {
		t.Fatal(err)
	}
	hosts, err := p2pdc.HostsOf(plat, peers)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{
		Problem:  DefaultProblem(n),
		Rounds:   rounds,
		Sweeps:   sweeps,
		Level:    costmodel.O0,
		Numerics: true,
	}
	var lastGlobal float64 = math.Inf(1)
	app := App(cfg, func(rank, round int, res float64) {
		if rank == 0 {
			lastGlobal = res
		}
	})
	spec := p2pdc.RunSpec{
		Submitter:    plat.Frontend,
		Hosts:        hosts,
		Scheme:       p2psap.Synchronous,
		ScatterBytes: cfg.ScatterBytesPerPeer(peers),
		GatherBytes:  cfg.GatherBytesPerPeer(peers),
	}
	res, err := env.Run(spec, app)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	return lastGlobal
}

func TestDistributedMatchesSerialSweep1(t *testing.T) {
	// With one sweep per round, the distributed iteration is exactly
	// serial Jacobi, so residual traces must match to float precision.
	n, rounds := 20, 60
	serialCfg := Config{Problem: DefaultProblem(n), Rounds: rounds, Sweeps: 1, Numerics: true}
	_, serialRes := SerialSolve(serialCfg)
	distRes := runDistributed(t, 4, n, rounds, 1)
	if math.Abs(serialRes-distRes) > 1e-12 {
		t.Fatalf("serial residual %v != distributed %v", serialRes, distRes)
	}
}

func TestDistributedPeerCountInvariance(t *testing.T) {
	n, rounds := 18, 40
	r2 := runDistributed(t, 2, n, rounds, 1)
	r3 := runDistributed(t, 3, n, rounds, 1)
	r6 := runDistributed(t, 6, n, rounds, 1)
	if math.Abs(r2-r3) > 1e-12 || math.Abs(r2-r6) > 1e-12 {
		t.Fatalf("residuals differ across peer counts: %v %v %v", r2, r3, r6)
	}
}

func TestDistributedMultiSweepConverges(t *testing.T) {
	// Block iterations (sweeps > 1) still converge to the same fixed
	// point even though intermediate trajectories differ.
	res := runDistributed(t, 3, 16, 400, 3)
	if res > 1e-9 {
		t.Fatalf("block iteration did not converge: %v", res)
	}
}

func TestModeledModeTimesScaleWithLevel(t *testing.T) {
	times := make(map[costmodel.Level]float64)
	for _, lvl := range []costmodel.Level{costmodel.O0, costmodel.O3} {
		plat, err := platform.Cluster(2)
		if err != nil {
			t.Fatal(err)
		}
		env, err := p2pdc.NewEnvironment(plat)
		if err != nil {
			t.Fatal(err)
		}
		hosts, _ := p2pdc.HostsOf(plat, 2)
		cfg := Config{Problem: Problem{N: 1024}, Rounds: 20, Sweeps: 20, Level: lvl, Numerics: false}
		spec := p2pdc.RunSpec{Submitter: plat.Frontend, Hosts: hosts, Scheme: p2psap.Synchronous}
		res, err := env.Run(spec, App(cfg, nil))
		if err != nil {
			t.Fatal(err)
		}
		times[lvl] = res.Total
	}
	if times[costmodel.O3] >= times[costmodel.O0] {
		t.Fatalf("O3 (%v) not faster than O0 (%v)", times[costmodel.O3], times[costmodel.O0])
	}
	ratio := times[costmodel.O3] / times[costmodel.O0]
	if ratio < 0.28 || ratio > 0.50 {
		t.Fatalf("O3/O0 ratio %v implausible (compute factor is 0.33)", ratio)
	}
}

func TestModeledTolStopsEarly(t *testing.T) {
	plat, _ := platform.Cluster(2)
	env, _ := p2pdc.NewEnvironment(plat)
	hosts, _ := p2pdc.HostsOf(plat, 2)
	// Synthetic residual is 0.9^round: tol 0.5 stops within ~7 rounds.
	cfg := Config{Problem: Problem{N: 64}, Rounds: 1000, Sweeps: 1, Tol: 0.5, Numerics: false}
	rounds := 0
	app := App(cfg, func(rank, round int, res float64) {
		if rank == 0 && round > rounds {
			rounds = round
		}
	})
	spec := p2pdc.RunSpec{Submitter: plat.Frontend, Hosts: hosts, Scheme: p2psap.Synchronous}
	if _, err := env.Run(spec, app); err != nil {
		t.Fatal(err)
	}
	if rounds > 10 {
		t.Fatalf("ran %d rounds, tol should stop it around 7", rounds)
	}
}

func TestConfigSizes(t *testing.T) {
	cfg := DefaultConfig(costmodel.O0)
	if cfg.BytesPerBoundary() != 8*1200 {
		t.Fatalf("boundary bytes = %v", cfg.BytesPerBoundary())
	}
	if cfg.ScatterBytesPerPeer(4) != 2*8*1200*1200/4 {
		t.Fatalf("scatter bytes = %v", cfg.ScatterBytesPerPeer(4))
	}
	if cfg.GatherBytesPerPeer(8) != 8*1200*1200/8 {
		t.Fatalf("gather bytes = %v", cfg.GatherBytesPerPeer(8))
	}
}

func TestAppErrorsOnTooManyPeers(t *testing.T) {
	plat, _ := platform.Cluster(4)
	env, _ := p2pdc.NewEnvironment(plat)
	hosts, _ := p2pdc.HostsOf(plat, 4)
	cfg := Config{Problem: Problem{N: 2}, Rounds: 1, Sweeps: 1, Numerics: false}
	spec := p2pdc.RunSpec{Submitter: plat.Frontend, Hosts: hosts, Scheme: p2psap.Synchronous}
	res, _ := env.Run(spec, App(cfg, nil))
	if res == nil || res.FirstError() == nil {
		t.Fatal("4 peers on a 2-row grid must error")
	}
}

func TestMaxDiff(t *testing.T) {
	a := newGrid(4)
	b := newGrid(4)
	b[2][3] = 0.5
	if d := MaxDiff(a, b, 0, 4); d != 0.5 {
		t.Fatalf("MaxDiff = %v", d)
	}
}

func BenchmarkSerialSweep(b *testing.B) {
	cfg := Config{Problem: DefaultProblem(128), Rounds: 1, Sweeps: 1, Numerics: true}
	u := newGrid(cfg.Problem.N)
	next := newGrid(cfg.Problem.N)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sweep(cfg.Problem, u, next, 0, cfg.Problem.N)
		u, next = next, u
	}
}
