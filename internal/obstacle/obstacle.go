// Package obstacle implements the paper's evaluation workload: the
// obstacle problem (Spitéri & Chau 2002; Nguyen et al. IPDPSW'10), a
// free-boundary PDE solved by a projected Jacobi/Richardson iteration
// on a square grid, parallelized over P2PDC with strip domain
// decomposition and direct boundary exchange between neighbouring
// peers.
//
// The solver runs in two modes:
//
//   - Numerics mode (tests, small grids): every cell is really
//     computed, boundary rows really travel as payloads, and the
//     distributed fixed point is checked against the serial solver.
//   - Modeled mode (experiments, paper-scale grids): the per-cell cost
//     from internal/costmodel is charged to the virtual clock instead
//     of crunching 1.4M cells × thousands of sweeps in real time; the
//     communication pattern is identical.
package obstacle

import (
	"fmt"
	"math"

	"repro/internal/costmodel"
	"repro/internal/p2pdc"
)

// Problem defines an obstacle-problem instance on an N×N interior
// grid of the unit square: find u >= psi with the projected Laplace
// update u = max(psi, 0.25*(neighbours) + q).
type Problem struct {
	N int
	// Force is the constant source term contribution per cell (q).
	Force float64
	// ObstacleHeight parametrizes the obstacle psi: a raised plateau
	// in the grid centre.
	ObstacleHeight float64
}

// DefaultProblem returns the instance used by the test suite's
// numerics checks.
func DefaultProblem(n int) Problem {
	return Problem{N: n, Force: 1e-4, ObstacleHeight: 0.05}
}

// Psi returns the obstacle height at interior cell (i, j).
func (pb Problem) Psi(i, j int) float64 {
	n := pb.N
	// A centred square plateau covering the middle third.
	if i > n/3 && i < 2*n/3 && j > n/3 && j < 2*n/3 {
		return pb.ObstacleHeight
	}
	return 0
}

// Config controls a solver run.
type Config struct {
	Problem Problem
	// Rounds is the number of communication rounds (ghost exchanges).
	Rounds int
	// Sweeps is the number of relaxation sweeps between exchanges
	// (block-iterative methods communicate every few sweeps).
	Sweeps int
	// Tol stops early when the global residual falls below it
	// (numerics mode only; 0 disables).
	Tol float64
	// Level is the GCC optimization level being modelled.
	Level costmodel.Level
	// Numerics selects real computation (true) or cost-model time
	// accounting (false).
	Numerics bool
	// ConvEvery runs the global convergence test every k rounds
	// (default 1: every round, as the P2PDC obstacle code does).
	ConvEvery int
	// Async selects the asynchronous iterative scheme (El-Baz et al.):
	// peers never block waiting for neighbour boundaries — they use
	// the freshest values that have arrived (possibly stale) and keep
	// relaxing. P2PSAP's asynchronous channel mode provides the
	// latest-value reception this needs. Convergence checks still
	// synchronize every ConvEvery rounds.
	Async bool
}

// DefaultConfig is the paper-scale calibration: a 1200² grid, 120
// communication rounds of 15 sweeps each, sized so the O0 reference
// on two peers lands near the paper's ≈ 40 s. See EXPERIMENTS.md.
func DefaultConfig(level costmodel.Level) Config {
	return Config{
		Problem:   Problem{N: 1200, Force: 1e-4, ObstacleHeight: 0.05},
		Rounds:    120,
		Sweeps:    15,
		Level:     level,
		Numerics:  false,
		ConvEvery: 1,
	}
}

// BytesPerBoundary returns the wire size of one ghost-row exchange.
func (c Config) BytesPerBoundary() float64 { return 8 * float64(c.Problem.N) }

// ScatterBytesPerPeer returns the subtask input size for p peers: the
// peer's strip of the initial grid plus the obstacle strip.
func (c Config) ScatterBytesPerPeer(p int) float64 {
	return 2 * 8 * float64(c.Problem.N) * float64(c.Problem.N) / float64(p)
}

// GatherBytesPerPeer returns the per-peer result size (its strip of
// the solution).
func (c Config) GatherBytesPerPeer(p int) float64 {
	return 8 * float64(c.Problem.N) * float64(c.Problem.N) / float64(p)
}

// SerialSolve runs the projected Jacobi iteration on one node and
// returns the final grid and the last residual. It is the numerics
// ground truth.
func SerialSolve(cfg Config) ([][]float64, float64) {
	n := cfg.Problem.N
	u := newGrid(n)
	next := newGrid(n)
	res := math.Inf(1)
	for r := 0; r < cfg.Rounds; r++ {
		for s := 0; s < cfg.Sweeps; s++ {
			res = sweep(cfg.Problem, u, next, 0, n)
			u, next = next, u
		}
		if cfg.Tol > 0 && res < cfg.Tol {
			break
		}
	}
	return u, res
}

// newGrid allocates an (n+2)×(n+2) grid (one ghost/boundary layer).
func newGrid(n int) [][]float64 {
	g := make([][]float64, n+2)
	cells := make([]float64, (n+2)*(n+2))
	for i := range g {
		g[i], cells = cells[:n+2], cells[n+2:]
	}
	return g
}

// sweep applies one projected-Jacobi sweep to interior rows
// [rowLo, rowHi) (1-based rows rowLo+1..rowHi) reading u, writing
// next, and returns the max residual of the region.
func sweep(pb Problem, u, next [][]float64, rowLo, rowHi int) float64 {
	res := 0.0
	for i := rowLo + 1; i <= rowHi; i++ {
		ui, uim, uip := u[i], u[i-1], u[i+1]
		ni := next[i]
		for j := 1; j <= pb.N; j++ {
			v := 0.25*(uim[j]+uip[j]+ui[j-1]+ui[j+1]) + pb.Force
			if psi := pb.Psi(i-1, j-1); v < psi {
				v = psi
			}
			if d := math.Abs(v - ui[j]); d > res {
				res = d
			}
			ni[j] = v
		}
	}
	return res
}

// StripOf returns rank r's interior row range [lo, hi) (0-based
// interior rows) for an N-row grid split over p ranks.
func StripOf(n, p, r int) (lo, hi int) {
	base := n / p
	extra := n % p
	lo = r*base + min(r, extra)
	hi = lo + base
	if r < extra {
		hi++
	}
	return lo, hi
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// App builds the P2PDC application for the given configuration. Rank
// topology is a line: rank r exchanges its first and last interior
// rows with ranks r-1 and r+1 every round, then every ConvEvery
// rounds all ranks run the global convergence test through rank 0.
func App(cfg Config, report func(rank int, round int, residual float64)) p2pdc.App {
	if cfg.ConvEvery <= 0 {
		cfg.ConvEvery = 1
	}
	return func(w *p2pdc.Worker) error {
		n := cfg.Problem.N
		p := w.Size()
		r := w.Rank()
		lo, hi := StripOf(n, p, r)
		rows := hi - lo
		if rows <= 0 {
			return fmt.Errorf("obstacle: rank %d of %d has no rows (n=%d)", r, p, n)
		}

		var u, next [][]float64
		if cfg.Numerics {
			// Each rank holds the full (n+2)² grid but only updates its
			// strip; ghost rows come from neighbours. (Memory-lavish but
			// simple, and tests use small n.)
			u = newGrid(n)
			next = newGrid(n)
		}

		bnd := cfg.BytesPerBoundary()
		cellCycles := costmodel.ObstacleCellCycles(cfg.Level)
		sweepCycles := float64(cfg.Sweeps) * float64(rows) * float64(n) * cellCycles

		for round := 0; round < cfg.Rounds; round++ {
			// Local relaxation sweeps.
			var localRes float64
			if cfg.Numerics {
				for s := 0; s < cfg.Sweeps; s++ {
					if s > 0 {
						// The grid we are about to read was the write
						// target of the previous sweep; refresh its ghost
						// rows from the other grid (block iteration: ghosts
						// stay fixed within a round).
						copy(u[lo], next[lo])
						copy(u[hi+1], next[hi+1])
					}
					localRes = sweep(cfg.Problem, u, next, lo, hi)
					u, next = next, u
				}
				w.Compute(sweepCycles)
			} else {
				w.Compute(sweepCycles)
				// Synthetic residual decays geometrically so ConvEvery
				// logic is exercised in modeled runs too.
				localRes = math.Pow(0.9, float64(round))
			}

			// Boundary exchange with line neighbours: send our edge
			// rows, then obtain theirs for the ghost rows — blocking
			// under the synchronous scheme, freshest-available under the
			// asynchronous one.
			if r > 0 {
				if err := w.Send(r-1, bnd, edgeRow(cfg, u, lo+1)); err != nil {
					return err
				}
			}
			if r < p-1 {
				if err := w.Send(r+1, bnd, edgeRow(cfg, u, hi)); err != nil {
					return err
				}
			}
			if cfg.Async {
				if r > 0 {
					v, ok, err := w.TryRecvLatest(r - 1)
					if err != nil {
						return err
					}
					if ok {
						setGhostRow(cfg, u, lo, v)
					}
				}
				if r < p-1 {
					v, ok, err := w.TryRecvLatest(r + 1)
					if err != nil {
						return err
					}
					if ok {
						setGhostRow(cfg, u, hi+1, v)
					}
				}
			} else {
				if r > 0 {
					v, err := w.Recv(r - 1)
					if err != nil {
						return err
					}
					setGhostRow(cfg, u, lo, v)
				}
				if r < p-1 {
					v, err := w.Recv(r + 1)
					if err != nil {
						return err
					}
					setGhostRow(cfg, u, hi+1, v)
				}
			}

			// Global convergence test (gathers at rank 0, serialized by
			// P2PSAP receive processing there).
			if (round+1)%cfg.ConvEvery == 0 {
				global, err := w.ConvergeMax(localRes)
				if err != nil {
					return err
				}
				if report != nil {
					report(r, round, global)
				}
				if cfg.Tol > 0 && global < cfg.Tol {
					return nil
				}
			}
		}
		return nil
	}
}

// edgeRow copies interior row idx (1-based in the padded grid) as the
// message payload in numerics mode; nil otherwise.
func edgeRow(cfg Config, u [][]float64, idx int) interface{} {
	if !cfg.Numerics {
		return nil
	}
	row := make([]float64, len(u[idx]))
	copy(row, u[idx])
	return row
}

// setGhostRow installs a received boundary row.
func setGhostRow(cfg Config, u [][]float64, idx int, payload interface{}) {
	if !cfg.Numerics || payload == nil {
		return
	}
	copy(u[idx], payload.([]float64))
}

// MaxDiff returns the max absolute difference between two grids'
// strips (rows [lo+1, hi] of the padded grids).
func MaxDiff(a, b [][]float64, lo, hi int) float64 {
	d := 0.0
	for i := lo + 1; i <= hi; i++ {
		for j := range a[i] {
			if x := math.Abs(a[i][j] - b[i][j]); x > d {
				d = x
			}
		}
	}
	return d
}
