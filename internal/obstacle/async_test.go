package obstacle

import (
	"math"
	"testing"

	"repro/internal/costmodel"
	"repro/internal/p2pdc"
	"repro/internal/p2psap"
	"repro/internal/platform"
)

// runScheme executes the solver on a platform kind with either scheme
// and returns total time and rank-0's final residual.
func runScheme(t *testing.T, kind platform.Kind, peers int, cfg Config) (float64, float64) {
	t.Helper()
	plat, err := platform.ForKind(kind, peers)
	if err != nil {
		t.Fatal(err)
	}
	env, err := p2pdc.NewEnvironment(plat)
	if err != nil {
		t.Fatal(err)
	}
	hosts, err := p2pdc.HostsOf(plat, peers)
	if err != nil {
		t.Fatal(err)
	}
	scheme := p2psap.Synchronous
	if cfg.Async {
		scheme = p2psap.Asynchronous
	}
	var lastRes float64 = math.Inf(1)
	app := App(cfg, func(rank, round int, res float64) {
		if rank == 0 {
			lastRes = res
		}
	})
	spec := p2pdc.RunSpec{
		Submitter: plat.Frontend,
		Hosts:     hosts,
		Scheme:    scheme,
	}
	res, err := env.Run(spec, app)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.FirstError(); err != nil {
		t.Fatal(err)
	}
	return res.Total, lastRes
}

// TestAsyncConvergesNumerically: the asynchronous scheme (stale
// boundaries allowed) still converges to the obstacle fixed point —
// the mathematical property the paper's distributed iterative methods
// rely on.
func TestAsyncConvergesNumerically(t *testing.T) {
	// Each round must outlast the network latency, otherwise ghost
	// rows never refresh between rounds and the iteration stalls at
	// the staleness plateau — hence many sweeps per round (a realistic
	// asynchronous-method configuration: lots of local work between
	// exchanges).
	cfg := Config{
		Problem:   DefaultProblem(16),
		Rounds:    300,
		Sweeps:    200,
		Level:     costmodel.O0,
		Numerics:  true,
		ConvEvery: 10,
		Async:     true,
	}
	_, res := runScheme(t, platform.KindCluster, 3, cfg)
	if res > 1e-8 {
		t.Fatalf("async iteration did not converge: residual %v", res)
	}
}

// TestAsyncFasterOnHighLatencyNetwork: on xDSL the asynchronous
// scheme hides boundary-exchange latency under computation, so the
// same iteration budget finishes sooner — P2PSAP's reason to offer
// per-scheme communication modes (paper §I, §III-D).
func TestAsyncFasterOnHighLatencyNetwork(t *testing.T) {
	base := Config{
		Problem:   Problem{N: 256},
		Rounds:    40,
		Sweeps:    2,
		Level:     costmodel.O0,
		Numerics:  false,
		ConvEvery: 40, // rare sync points
	}
	syncCfg := base
	asyncCfg := base
	asyncCfg.Async = true
	tSync, _ := runScheme(t, platform.KindDaisy, 4, syncCfg)
	tAsync, _ := runScheme(t, platform.KindDaisy, 4, asyncCfg)
	if tAsync >= tSync {
		t.Fatalf("async (%v s) not faster than sync (%v s) on xDSL", tAsync, tSync)
	}
	if tAsync > 0.8*tSync {
		t.Fatalf("async saves only %.1f%%, expected substantial latency hiding",
			100*(1-tAsync/tSync))
	}
}

// TestAsyncSameComputeOnCluster: on the low-latency cluster the two
// schemes should be close (little latency to hide).
func TestAsyncSameComputeOnCluster(t *testing.T) {
	base := Config{
		Problem:   Problem{N: 256},
		Rounds:    30,
		Sweeps:    4,
		Level:     costmodel.O0,
		Numerics:  false,
		ConvEvery: 30,
	}
	syncCfg := base
	asyncCfg := base
	asyncCfg.Async = true
	tSync, _ := runScheme(t, platform.KindCluster, 4, syncCfg)
	tAsync, _ := runScheme(t, platform.KindCluster, 4, asyncCfg)
	if tAsync > tSync {
		t.Fatalf("async slower than sync on cluster: %v vs %v", tAsync, tSync)
	}
	if tAsync < 0.85*tSync {
		t.Fatalf("cluster gap too large (%v vs %v): latency hiding should be marginal", tAsync, tSync)
	}
}
