package p2psap

import (
	"math"
	"testing"

	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/platform"
	"repro/internal/proximity"
)

// lanPair builds a 2-host LAN-latency platform network.
func lanPair(t testing.TB, bw, lat float64) (*des.Simulation, *netsim.Post) {
	t.Helper()
	p := platform.New("pair")
	ip := proximity.MustParseAddr
	if err := p.AddHost("a", ip("10.0.0.1"), 1e9); err != nil {
		t.Fatal(err)
	}
	if err := p.AddHost("b", ip("10.0.0.2"), 1e9); err != nil {
		t.Fatal(err)
	}
	if err := p.Connect("a", "b", "ab", bw, lat); err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	n, err := p.NewNetwork(sim)
	if err != nil {
		t.Fatal(err)
	}
	return sim, netsim.NewPost(n)
}

func TestAdaptProfileThresholds(t *testing.T) {
	if got := AdaptProfile(100e-6); got.Name != "cluster" {
		t.Fatalf("100µs -> %s, want cluster", got.Name)
	}
	if got := AdaptProfile(2e-3); got.Name != "lan" {
		t.Fatalf("2ms -> %s, want lan", got.Name)
	}
	if got := AdaptProfile(30e-3); got.Name != "wan" {
		t.Fatalf("30ms -> %s, want wan", got.Name)
	}
}

func TestChannelAdaptsToPathLatency(t *testing.T) {
	sim, post := lanPair(t, 12.5e6, 2e-3) // 2 ms path -> LAN profile
	pr := New(post)
	ch, err := pr.Channel("a", "b", "t", Synchronous)
	if err != nil {
		t.Fatal(err)
	}
	if ch.Profile().Name != "lan" {
		t.Fatalf("profile = %s, want lan", ch.Profile().Name)
	}
	if pr.Adaptations != 1 {
		t.Fatalf("adaptations = %d", pr.Adaptations)
	}
	_ = sim
}

func TestChannelIsSymmetricAndCached(t *testing.T) {
	_, post := lanPair(t, 12.5e6, 1e-4)
	pr := New(post)
	ab, _ := pr.Channel("a", "b", "t", Synchronous)
	ba, _ := pr.Channel("b", "a", "t", Synchronous)
	if ab != ba {
		t.Fatal("channel not shared between directions")
	}
	other, _ := pr.Channel("a", "b", "u", Synchronous)
	if other == ab {
		t.Fatal("different tags must give different channels")
	}
}

func TestSchemeChangeCountsAdaptation(t *testing.T) {
	_, post := lanPair(t, 12.5e6, 1e-4)
	pr := New(post)
	ch, _ := pr.Channel("a", "b", "t", Synchronous)
	before := pr.Adaptations
	ch2, _ := pr.Channel("a", "b", "t", Asynchronous)
	if ch2 != ch {
		t.Fatal("reconfiguration must reuse the channel")
	}
	if pr.Adaptations != before+1 {
		t.Fatal("scheme change not counted as adaptation")
	}
	if ch.Scheme() != Asynchronous {
		t.Fatal("scheme not updated")
	}
}

func TestSendBlockingWaitsForDelivery(t *testing.T) {
	sim, post := lanPair(t, 1e6, 0.01)
	pr := New(post)
	ch, err := pr.Channel("a", "b", "data", Synchronous)
	if err != nil {
		t.Fatal(err)
	}
	var sendReturned, recvAt float64 = -1, -1
	sim.Spawn("sender", 0, func(p *des.Process) {
		if err := ch.SendBlocking(p, "a", 1e6, "payload"); err != nil {
			t.Error(err)
		}
		sendReturned = p.Now()
	})
	sim.Spawn("receiver", 0, func(p *des.Process) {
		v, err := ch.Recv(p, "b")
		if err != nil {
			t.Error(err)
		}
		if v.(string) != "payload" {
			t.Errorf("payload = %v", v)
		}
		recvAt = p.Now()
	})
	sim.Run()
	// 10 ms path latency adapts to the WAN profile.
	prof := ch.Profile()
	if prof.Name != "wan" {
		t.Fatalf("profile = %s, want wan for a 10 ms path", prof.Name)
	}
	// Wire time: sendOverhead + latency + (1e6+frame)/1e6.
	wire := prof.SendOverhead + 0.01 + (1e6+prof.FrameBytes)/1e6
	if math.Abs(sendReturned-wire) > 1e-6 {
		t.Fatalf("send returned at %v, want ~%v", sendReturned, wire)
	}
	if recvAt < sendReturned {
		t.Fatalf("recv (%v) before send completion (%v)", recvAt, sendReturned)
	}
	if math.Abs(recvAt-(wire+prof.RecvOverhead)) > 1e-6 {
		t.Fatalf("recv at %v, want wire+recvOverhead", recvAt)
	}
}

func TestEagerSendDoesNotBlock(t *testing.T) {
	sim, post := lanPair(t, 1e3, 0) // very slow link
	pr := New(post)
	ch, _ := pr.Channel("a", "b", "data", Synchronous)
	var sendReturned float64 = -1
	sim.Spawn("sender", 0, func(p *des.Process) {
		if err := ch.Send(p, "a", 1e3, nil); err != nil {
			t.Error(err)
		}
		sendReturned = p.Now()
	})
	sim.Spawn("receiver", 0, func(p *des.Process) {
		ch.Recv(p, "b")
	})
	sim.Run()
	if sendReturned > ClusterProfile.SendOverhead+1e-9 {
		t.Fatalf("async send blocked until %v", sendReturned)
	}
}

func TestTryRecvLatestDropsStale(t *testing.T) {
	sim, post := lanPair(t, 1e9, 1e-4)
	pr := New(post)
	ch, _ := pr.Channel("a", "b", "bnd", Asynchronous)
	sim.Spawn("sender", 0, func(p *des.Process) {
		for i := 0; i < 5; i++ {
			if err := ch.Send(p, "a", 8, i); err != nil {
				t.Error(err)
			}
		}
	})
	var got interface{}
	var ok bool
	sim.Spawn("receiver", 1, func(p *des.Process) { // starts after all arrive
		var err error
		got, ok, err = ch.TryRecvLatest(p, "b")
		if err != nil {
			t.Error(err)
		}
	})
	sim.Run()
	if !ok || got.(int) != 4 {
		t.Fatalf("latest = %v (ok=%v), want 4", got, ok)
	}
	if ch.Dropped != 4 {
		t.Fatalf("dropped = %d, want 4", ch.Dropped)
	}
}

func TestTryRecvLatestEmpty(t *testing.T) {
	sim, post := lanPair(t, 1e9, 1e-4)
	pr := New(post)
	ch, _ := pr.Channel("a", "b", "bnd", Asynchronous)
	sim.Spawn("receiver", 0, func(p *des.Process) {
		_, ok, err := ch.TryRecvLatest(p, "b")
		if err != nil || ok {
			t.Errorf("empty TryRecvLatest = ok=%v err=%v", ok, err)
		}
	})
	sim.Run()
}

func TestEndpointValidation(t *testing.T) {
	sim, post := lanPair(t, 1e9, 1e-4)
	pr := New(post)
	ch, _ := pr.Channel("a", "b", "t", Synchronous)
	sim.Spawn("x", 0, func(p *des.Process) {
		if err := ch.Send(p, "zzz", 8, nil); err == nil {
			t.Error("foreign sender accepted")
		}
		if _, err := ch.Recv(p, "zzz"); err == nil {
			t.Error("foreign receiver accepted")
		}
		if err := ch.Send(p, "a", -1, nil); err == nil {
			t.Error("negative size accepted")
		}
	})
	sim.Run()
}

func TestChannelUnknownHost(t *testing.T) {
	_, post := lanPair(t, 1e9, 1e-4)
	pr := New(post)
	if _, err := pr.Channel("a", "nosuch", "t", Synchronous); err == nil {
		t.Fatal("unknown host accepted")
	}
}

func TestTrafficCounters(t *testing.T) {
	sim, post := lanPair(t, 1e9, 1e-4)
	pr := New(post)
	ch, _ := pr.Channel("a", "b", "t", Synchronous)
	sim.Spawn("s", 0, func(p *des.Process) {
		ch.Send(p, "a", 1000, nil)
		ch.Send(p, "a", 1000, nil)
	})
	sim.Spawn("r", 0, func(p *des.Process) {
		ch.Recv(p, "b")
		ch.Recv(p, "b")
	})
	sim.Run()
	if ch.Sent != 2 || ch.Received != 2 {
		t.Fatalf("sent/received = %d/%d", ch.Sent, ch.Received)
	}
	wantWire := 2 * (1000 + ClusterProfile.FrameBytes)
	if math.Abs(ch.BytesOnWire-wantWire) > 1e-9 {
		t.Fatalf("wire bytes = %v, want %v", ch.BytesOnWire, wantWire)
	}
}

func TestSchemeString(t *testing.T) {
	if Synchronous.String() != "synchronous" || Asynchronous.String() != "asynchronous" {
		t.Fatal("scheme names wrong")
	}
}
