// Package p2psap models the Peer-To-Peer Self-Adaptive communication
// Protocol (El-Baz & Nguyen, PDP'10) that P2PDC uses for direct
// peer-to-peer data exchange. The protocol picks a transport profile
// per channel according to context: the computation scheme chosen at
// application level (synchronous or asynchronous iterations) and the
// network context at transport level (cluster, LAN or WAN/xDSL,
// detected from path latency). Profiles differ in framing overhead and
// in per-message send/receive processing cost — the protocol-stack
// work that dominates small-message behaviour on consumer links.
package p2psap

import (
	"fmt"

	"repro/internal/des"
	"repro/internal/netsim"
)

// Scheme is the application-level iterative scheme (paper §I: P2PSAP
// "chooses dynamically appropriate communication mode between any
// peers according to decisions taken at application level like
// schemes of computation, e.g. synchronous or asynchronous iterative
// schemes").
type Scheme int

// Schemes.
const (
	Synchronous Scheme = iota
	Asynchronous
)

func (s Scheme) String() string {
	if s == Synchronous {
		return "synchronous"
	}
	return "asynchronous"
}

// Profile is a transport configuration chosen by self-adaptation.
type Profile struct {
	Name string
	// FrameBytes is added to every message on the wire (headers,
	// acknowledgements amortized).
	FrameBytes float64
	// SendOverhead is CPU time spent by the sender per message.
	SendOverhead float64
	// RecvOverhead is CPU time spent by the receiver per message
	// before the payload is available (session handling, reordering,
	// checksum). Serialized at the receiving peer.
	RecvOverhead float64
}

// The three context profiles. Thresholds and costs are calibrated in
// internal/experiments; see EXPERIMENTS.md.
var (
	ClusterProfile = Profile{Name: "cluster", FrameBytes: 64, SendOverhead: 20e-6, RecvOverhead: 50e-6}
	LANProfile     = Profile{Name: "lan", FrameBytes: 128, SendOverhead: 200e-6, RecvOverhead: 2.5e-3}
	WANProfile     = Profile{Name: "wan", FrameBytes: 256, SendOverhead: 300e-6, RecvOverhead: 1.5e-3}
)

// AdaptProfile selects the transport profile from the measured
// one-way path latency between two peers — the transport-level
// context element of the paper.
func AdaptProfile(pathLatency float64) Profile {
	switch {
	case pathLatency < 0.5e-3:
		return ClusterProfile
	case pathLatency < 5e-3:
		return LANProfile
	default:
		return WANProfile
	}
}

// Protocol is a P2PSAP instance bound to a simulated network.
type Protocol struct {
	post *netsim.Post

	// Adaptations counts profile or scheme reconfigurations, a metric
	// for the self-adaptive behaviour.
	Adaptations int

	channels map[string]*Channel
}

// New creates a protocol instance over the given message layer.
func New(post *netsim.Post) *Protocol {
	return &Protocol{post: post, channels: make(map[string]*Channel)}
}

// Post exposes the underlying message layer.
func (pr *Protocol) Post() *netsim.Post { return pr.post }

// Channel returns (creating on first use) the bidirectional channel
// between two hosts for the given logical tag. The transport profile
// is chosen by probing the path latency; the scheme configures
// blocking behaviour.
func (pr *Protocol) Channel(a, b, tag string, scheme Scheme) (*Channel, error) {
	key := a + "|" + b + "|" + tag
	if a > b {
		key = b + "|" + a + "|" + tag
	}
	if ch, ok := pr.channels[key]; ok {
		if ch.scheme != scheme {
			// Application-level context changed: reconfigure.
			ch.scheme = scheme
			pr.Adaptations++
		}
		return ch, nil
	}
	lat, err := pr.post.Net().TransferTime(a, b, 0)
	if err != nil {
		return nil, fmt.Errorf("p2psap: cannot probe %s<->%s: %w", a, b, err)
	}
	ch := &Channel{
		proto:   pr,
		a:       a,
		b:       b,
		tag:     tag,
		profile: AdaptProfile(lat),
		scheme:  scheme,
	}
	// Mailbox tags are fixed per direction; building them once keeps
	// the per-message path allocation-free.
	ch.tagAtA = "p2psap:" + tag + ":" + a
	ch.tagAtB = "p2psap:" + tag + ":" + b
	pr.channels[key] = ch
	pr.Adaptations++
	return ch, nil
}

// Channel is a configured point-to-point session.
type Channel struct {
	proto   *Protocol
	a, b    string
	tag     string
	profile Profile
	scheme  Scheme
	// tagAtA/tagAtB are the precomputed mailbox tags for messages
	// arriving at endpoint a and b respectively.
	tagAtA, tagAtB string

	// Traffic counters.
	Sent, Received int
	BytesOnWire    float64
	// Dropped counts stale asynchronous messages discarded by
	// latest-value reception.
	Dropped int
}

// Profile returns the adapted transport profile.
func (c *Channel) Profile() Profile { return c.profile }

// Scheme returns the configured application scheme.
func (c *Channel) Scheme() Scheme { return c.scheme }

func (c *Channel) other(host string) (string, error) {
	switch host {
	case c.a:
		return c.b, nil
	case c.b:
		return c.a, nil
	}
	return "", fmt.Errorf("p2psap: host %q not an endpoint of channel %s<->%s", host, c.a, c.b)
}

func (c *Channel) mailTag(at string) string {
	if at == c.a {
		return c.tagAtA
	}
	return c.tagAtB
}

// Send transmits payload from the given endpoint. Sends are eager
// under both schemes: the caller pays the local protocol processing
// cost and the transfer proceeds in the background. Synchronization
// comes from reception — under the synchronous scheme a peer cannot
// start its next iteration before Recv returns the partner's data,
// which is how P2PSAP's synchronous iterative mode synchronizes
// computations (per-iteration sync, not per-message rendezvous).
func (c *Channel) Send(p *des.Process, from string, bytes float64, payload interface{}) error {
	dst, err := c.other(from)
	if err != nil {
		return err
	}
	if bytes < 0 {
		return fmt.Errorf("p2psap: negative message size %v", bytes)
	}
	// Sender-side protocol processing.
	if c.profile.SendOverhead > 0 {
		p.Sleep(c.profile.SendOverhead)
	}
	wire := bytes + c.profile.FrameBytes
	c.Sent++
	c.BytesOnWire += wire
	return c.proto.post.SendAsync(from, dst, c.mailTag(dst), wire, payload)
}

// SendBlocking is the rendezvous variant: the caller blocks until the
// message is fully delivered. P2PSAP uses it for control traffic that
// must be acknowledged before proceeding.
func (c *Channel) SendBlocking(p *des.Process, from string, bytes float64, payload interface{}) error {
	dst, err := c.other(from)
	if err != nil {
		return err
	}
	if bytes < 0 {
		return fmt.Errorf("p2psap: negative message size %v", bytes)
	}
	if c.profile.SendOverhead > 0 {
		p.Sleep(c.profile.SendOverhead)
	}
	wire := bytes + c.profile.FrameBytes
	c.Sent++
	c.BytesOnWire += wire
	return c.proto.post.Send(p, from, dst, c.mailTag(dst), wire, payload)
}

// Recv blocks until a message for this endpoint arrives, then charges
// the receiver-side processing overhead and returns the payload.
func (c *Channel) Recv(p *des.Process, at string) (interface{}, error) {
	if _, err := c.other(at); err != nil {
		return nil, err
	}
	m := c.proto.post.Recv(p, at, c.mailTag(at))
	if c.profile.RecvOverhead > 0 {
		p.Sleep(c.profile.RecvOverhead)
	}
	c.Received++
	return m.Payload, nil
}

// TryRecvLatest polls without blocking and returns only the freshest
// pending message, discarding older ones — the latest-value semantics
// asynchronous iterative schemes want (stale boundary values are
// useless once a fresher one exists).
func (c *Channel) TryRecvLatest(p *des.Process, at string) (interface{}, bool, error) {
	if _, err := c.other(at); err != nil {
		return nil, false, err
	}
	tag := c.mailTag(at)
	var last *netsim.Message
	for {
		m, ok := c.proto.post.TryRecv(at, tag)
		if !ok {
			break
		}
		if last != nil {
			c.Dropped++
		}
		last = m
	}
	if last == nil {
		return nil, false, nil
	}
	if c.profile.RecvOverhead > 0 {
		p.Sleep(c.profile.RecvOverhead)
	}
	c.Received++
	return last.Payload, true, nil
}
