package des

import (
	"math"
	"runtime"
	"testing"
	"time"
)

// TestEventQueueOrdering: the 4-ary heap must deliver events in
// (time, seq) order under a randomized push/pop workload; a simple
// sorted reference is the oracle.
func TestEventQueueOrdering(t *testing.T) {
	var q eventQueue
	// Deterministic LCG so the test is reproducible.
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state = state*6364136223846793005 + 1442695040888963407
		return state
	}
	var seq uint64
	pushed := 0
	var lastTime float64
	var lastSeq uint64
	popped := 0
	check := func(e event) {
		if e.time < lastTime || (e.time == lastTime && e.seq < lastSeq) {
			t.Fatalf("pop %d out of order: (%v,%d) after (%v,%d)", popped, e.time, e.seq, lastTime, lastSeq)
		}
		lastTime, lastSeq = e.time, e.seq
		popped++
	}
	for i := 0; i < 5000; i++ {
		r := next()
		if r%3 != 0 || q.len() == 0 {
			seq++
			// Coarse times force (time, seq) ties.
			q.push(event{time: float64(r % 64), seq: seq})
			pushed++
		} else {
			lastTime, lastSeq = 0, 0 // interleaved pops only check monotone within drains
			e := q.pop()
			_ = e
			popped++
		}
	}
	// Drain and verify total order.
	lastTime, lastSeq = math.Inf(-1), 0
	for q.len() > 0 {
		check(q.pop())
	}
}

// TestReheapRestoresSeqOrderOnTimeCollapse: when a uniform time shift
// collapses two distinct event times into a tie, the (time, seq)
// invariant must be re-established so equal-time events pop in
// schedule order — the exact hazard Rebase guards against by calling
// reheap.
func TestReheapRestoresSeqOrderOnTimeCollapse(t *testing.T) {
	var q eventQueue
	q.push(event{time: 10, seq: 1})
	q.push(event{time: 5, seq: 2}) // becomes the root: earlier time, later seq
	// A rounding collapse makes both times equal; the old layout now
	// violates (time, seq): root seq 2 above child seq 1.
	for i := range q.a {
		q.a[i].time = 5
	}
	q.reheap()
	if e := q.pop(); e.seq != 1 {
		t.Fatalf("first pop seq %d, want 1 (schedule order on a time tie)", e.seq)
	}
	if e := q.pop(); e.seq != 2 {
		t.Fatalf("second pop seq %d, want 2", e.seq)
	}
}

// TestRebaseShiftsPendingEvents: rebasing folds the offset into the
// base, shifts queued events, keeps AbsNow and event order, and
// notifies hooks.
func TestRebaseShiftsPendingEvents(t *testing.T) {
	s := New()
	var fired []float64
	var hookShift float64
	s.OnRebase(func(shift float64) { hookShift = shift })
	s.Schedule(1, func() {
		if got := s.Rebase(); got != 1 {
			t.Fatalf("Rebase returned %v, want 1", got)
		}
		if s.Now() != 0 || s.Base() != 1 || s.AbsNow() != 1 {
			t.Fatalf("after rebase: now=%v base=%v", s.Now(), s.Base())
		}
	})
	s.Schedule(3, func() { fired = append(fired, s.Now(), s.AbsNow()) })
	s.Run()
	if hookShift != 1 {
		t.Fatalf("rebase hook saw shift %v, want 1", hookShift)
	}
	// The 3 s event fires at in-epoch offset 2, absolute time 3.
	if len(fired) != 2 || fired[0] != 2 || fired[1] != 3 {
		t.Fatalf("post-rebase event fired at %v, want offset 2 / abs 3", fired)
	}
}

// TestAdvanceTo: jumps the clock without draining events, and refuses
// to jump past one.
func TestAdvanceTo(t *testing.T) {
	s := New()
	s.AdvanceTo(5)
	if s.Now() != 5 {
		t.Fatalf("Now = %v after AdvanceTo(5)", s.Now())
	}
	s.Schedule(10, func() {})
	s.AdvanceTo(15) // exactly at the pending event is fine
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("AdvanceTo past a pending event did not panic")
			}
		}()
		s.AdvanceTo(16)
	}()
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("AdvanceTo into the past did not panic")
			}
		}()
		s.AdvanceTo(1)
	}()
}

// TestAdvanceBaseIteratedAddition: the closed-form jump must perform
// the same float64 additions a per-round loop would.
func TestAdvanceBaseIteratedAddition(t *testing.T) {
	s := New()
	delta := 0.080903773833333303 // a realistic non-dyadic round period
	s.AdvanceBase(delta, 1000)
	want := 0.0
	for i := 0; i < 1000; i++ {
		want += delta
	}
	if s.Base() != want {
		t.Fatalf("AdvanceBase accumulated %x, want %x",
			math.Float64bits(s.Base()), math.Float64bits(want))
	}
}

// TestScheduleAuxPendingReal: auxiliary events run like any other but
// are excluded from PendingReal.
func TestScheduleAuxPendingReal(t *testing.T) {
	s := New()
	ran := 0
	s.ScheduleAux(2, func() { ran++ })
	s.Schedule(1, func() { ran++ })
	if s.Pending() != 2 || s.PendingReal() != 1 {
		t.Fatalf("Pending=%d PendingReal=%d, want 2/1", s.Pending(), s.PendingReal())
	}
	s.Run()
	if ran != 2 {
		t.Fatalf("ran %d events, want 2", ran)
	}
	if s.Pending() != 0 || s.PendingReal() != 0 {
		t.Fatalf("queue not drained: Pending=%d PendingReal=%d", s.Pending(), s.PendingReal())
	}
}

// TestShutdownReapsParkedProcesses: Shutdown must unwind parked
// process goroutines (they would otherwise block forever) and leave
// the kernel resettable.
func TestShutdownReapsParkedProcesses(t *testing.T) {
	before := runtime.NumGoroutine()
	s := New()
	const n = 20
	for i := 0; i < n; i++ {
		cond := s.NewCond()
		s.Spawn("parked", 0, func(p *Process) {
			cond.Wait(p) // parks forever: nobody signals
		})
	}
	// Drive until the deadlock panic (all parked, queue empty).
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("expected deadlock panic")
			}
		}()
		s.Run()
	}()
	if s.Live() != n {
		t.Fatalf("Live = %d, want %d", s.Live(), n)
	}
	s.Shutdown()
	if s.Live() != 0 {
		t.Fatalf("Live = %d after Shutdown", s.Live())
	}
	if err := s.Reset(); err != nil {
		t.Fatalf("Reset after Shutdown: %v", err)
	}
	// The kernel still works after teardown.
	ok := false
	s.Spawn("fresh", 0, func(p *Process) {
		p.Sleep(1)
		ok = true
	})
	s.Run()
	if !ok {
		t.Fatal("post-shutdown process did not run")
	}
	// Goroutines unwind asynchronously; wait for the count to settle.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before+2 {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d before, %d after shutdown",
				before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestShutdownNeverStartedProcess: a process whose first activation
// never fired is reaped without running its body.
func TestShutdownNeverStartedProcess(t *testing.T) {
	s := New()
	ran := false
	s.Spawn("late", 1000, func(p *Process) { ran = true })
	s.RunUntil(1) // the start event stays pending
	if s.Live() != 1 {
		t.Fatalf("Live = %d, want 1", s.Live())
	}
	s.Shutdown()
	if ran {
		t.Fatal("killed process body ran")
	}
	if s.Live() != 0 || s.Pending() != 0 {
		t.Fatalf("Shutdown left live=%d pending=%d", s.Live(), s.Pending())
	}
}
