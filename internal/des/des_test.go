package des

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	s := New()
	var got []int
	s.Schedule(2.0, func() { got = append(got, 2) })
	s.Schedule(1.0, func() { got = append(got, 1) })
	s.Schedule(3.0, func() { got = append(got, 3) })
	end := s.Run()
	if end != 3.0 {
		t.Fatalf("end time = %v, want 3.0", end)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("order = %v, want [1 2 3]", got)
	}
}

func TestScheduleTieBreakBySequence(t *testing.T) {
	s := New()
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.Schedule(1.0, func() { got = append(got, i) })
	}
	s.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("tie order broken: got %v", got)
		}
	}
}

func TestScheduleNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative delay")
		}
	}()
	New().Schedule(-1, func() {})
}

func TestScheduleNaNPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for NaN delay")
		}
	}()
	New().Schedule(math.NaN(), func() {})
}

func TestScheduleAt(t *testing.T) {
	s := New()
	var at float64
	s.Schedule(1, func() {
		s.ScheduleAt(5, func() { at = s.Now() })
	})
	s.Run()
	if at != 5 {
		t.Fatalf("event ran at %v, want 5", at)
	}
}

func TestScheduleAtPastPanics(t *testing.T) {
	s := New()
	s.Schedule(2, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		s.ScheduleAt(1, func() {})
	})
	s.Run()
}

func TestRunUntilStopsEarly(t *testing.T) {
	s := New()
	ran := false
	s.Schedule(10, func() { ran = true })
	end := s.RunUntil(5)
	if end != 5 {
		t.Fatalf("RunUntil returned %v, want 5", end)
	}
	if ran {
		t.Fatal("event beyond limit ran")
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", s.Pending())
	}
	s.Run()
	if !ran {
		t.Fatal("event did not run after resuming")
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	s := New()
	count := 0
	var rec func()
	rec = func() {
		count++
		if count < 100 {
			s.Schedule(0.5, rec)
		}
	}
	s.Schedule(0, rec)
	end := s.Run()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if math.Abs(end-49.5) > 1e-9 {
		t.Fatalf("end = %v, want 49.5", end)
	}
}

func TestStep(t *testing.T) {
	s := New()
	n := 0
	s.Schedule(1, func() { n++ })
	s.Schedule(2, func() { n++ })
	if !s.Step() || n != 1 {
		t.Fatal("first step failed")
	}
	if !s.Step() || n != 2 {
		t.Fatal("second step failed")
	}
	if s.Step() {
		t.Fatal("step on empty queue returned true")
	}
}

func TestProcessSleep(t *testing.T) {
	s := New()
	var wake []float64
	s.Spawn("sleeper", 0, func(p *Process) {
		p.Sleep(1)
		wake = append(wake, p.Now())
		p.Sleep(2.5)
		wake = append(wake, p.Now())
	})
	end := s.Run()
	if end != 3.5 {
		t.Fatalf("end = %v, want 3.5", end)
	}
	if len(wake) != 2 || wake[0] != 1 || wake[1] != 3.5 {
		t.Fatalf("wake times = %v", wake)
	}
}

func TestProcessesInterleaveDeterministically(t *testing.T) {
	run := func() []string {
		s := New()
		var log []string
		for _, name := range []string{"a", "b", "c"} {
			name := name
			s.Spawn(name, 0, func(p *Process) {
				for i := 0; i < 3; i++ {
					log = append(log, name)
					p.Sleep(1)
				}
			})
		}
		s.Run()
		return log
	}
	first := run()
	for i := 0; i < 10; i++ {
		again := run()
		if len(again) != len(first) {
			t.Fatal("nondeterministic length")
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("nondeterministic interleaving: run %d: %v vs %v", i, again, first)
			}
		}
	}
}

func TestProcessSpawnDelay(t *testing.T) {
	s := New()
	var started float64 = -1
	s.Spawn("late", 4.25, func(p *Process) { started = p.Now() })
	s.Run()
	if started != 4.25 {
		t.Fatalf("started at %v, want 4.25", started)
	}
}

func TestCondSignalThenWait(t *testing.T) {
	s := New()
	c := s.NewCond()
	var seen float64 = -1
	s.Schedule(1, func() { c.Signal() })
	s.Spawn("w", 2, func(p *Process) {
		c.Wait(p) // signal is already pending: returns immediately
		seen = p.Now()
	})
	s.Run()
	if seen != 2 {
		t.Fatalf("wait returned at %v, want 2 (pending signal)", seen)
	}
}

func TestCondWaitThenSignal(t *testing.T) {
	s := New()
	c := s.NewCond()
	var seen float64 = -1
	s.Spawn("w", 0, func(p *Process) {
		c.Wait(p)
		seen = p.Now()
	})
	s.Schedule(3, func() { c.Signal() })
	s.Run()
	if seen != 3 {
		t.Fatalf("wait returned at %v, want 3", seen)
	}
}

func TestCondDoubleWaiterPanics(t *testing.T) {
	s := New()
	c := s.NewCond()
	s.Spawn("w1", 0, func(p *Process) { c.Wait(p) })
	panicked := make(chan bool, 1)
	s.Spawn("w2", 1, func(p *Process) {
		defer func() {
			panicked <- recover() != nil
			// Re-park forever so the kernel doesn't see us finish oddly;
			// actually just finish: recover consumed the panic.
		}()
		c.Wait(p)
	})
	// w1 never gets signalled -> deadlock panic expected from Run.
	defer func() { recover() }()
	s.Run()
	if !<-panicked {
		t.Fatal("second waiter did not panic")
	}
}

func TestQueueFIFO(t *testing.T) {
	s := New()
	q := s.NewQueue()
	var got []int
	s.Spawn("reader", 0, func(p *Process) {
		for i := 0; i < 3; i++ {
			got = append(got, q.Get(p).(int))
		}
	})
	s.Schedule(1, func() { q.Put(10) })
	s.Schedule(2, func() { q.Put(20) })
	s.Schedule(2, func() { q.Put(30) })
	s.Run()
	if len(got) != 3 || got[0] != 10 || got[1] != 20 || got[2] != 30 {
		t.Fatalf("got %v", got)
	}
}

func TestQueueGetBeforePut(t *testing.T) {
	s := New()
	q := s.NewQueue()
	var at float64 = -1
	s.Spawn("reader", 0, func(p *Process) {
		q.Get(p)
		at = p.Now()
	})
	s.Schedule(7, func() { q.Put("x") })
	s.Run()
	if at != 7 {
		t.Fatalf("reader woke at %v, want 7", at)
	}
}

func TestQueueTryGet(t *testing.T) {
	s := New()
	q := s.NewQueue()
	if _, ok := q.TryGet(); ok {
		t.Fatal("TryGet on empty returned ok")
	}
	q.Put(1)
	q.Put(2)
	if q.Len() != 2 {
		t.Fatalf("len = %d", q.Len())
	}
	v, ok := q.TryGet()
	if !ok || v.(int) != 1 {
		t.Fatalf("TryGet = %v, %v", v, ok)
	}
}

func TestQueueMultipleReaders(t *testing.T) {
	s := New()
	q := s.NewQueue()
	var order []string
	for _, name := range []string{"r1", "r2"} {
		name := name
		s.Spawn(name, 0, func(p *Process) {
			q.Get(p)
			order = append(order, name)
		})
	}
	s.Schedule(1, func() { q.Put(1) })
	s.Schedule(2, func() { q.Put(2) })
	s.Run()
	if len(order) != 2 || order[0] != "r1" || order[1] != "r2" {
		t.Fatalf("reader order = %v, want [r1 r2]", order)
	}
}

func TestBarrierReleasesTogether(t *testing.T) {
	s := New()
	b := s.NewBarrier(3)
	var times []float64
	for i, d := range []float64{1, 2, 3} {
		_ = i
		d := d
		s.Spawn("p", d, func(p *Process) {
			b.Arrive(p)
			times = append(times, p.Now())
		})
	}
	s.Run()
	if len(times) != 3 {
		t.Fatalf("times = %v", times)
	}
	for _, tm := range times {
		if tm != 3 {
			t.Fatalf("release at %v, want 3 (all released when last arrives)", tm)
		}
	}
	if b.Generation() != 1 {
		t.Fatalf("generation = %d", b.Generation())
	}
}

func TestBarrierReusable(t *testing.T) {
	s := New()
	b := s.NewBarrier(2)
	count := 0
	for i := 0; i < 2; i++ {
		s.Spawn("p", 0, func(p *Process) {
			for round := 0; round < 5; round++ {
				p.Sleep(1)
				b.Arrive(p)
			}
			count++
		})
	}
	s.Run()
	if count != 2 || b.Generation() != 5 {
		t.Fatalf("count=%d gen=%d", count, b.Generation())
	}
}

func TestBarrierSizeOne(t *testing.T) {
	s := New()
	b := s.NewBarrier(1)
	done := false
	s.Spawn("p", 0, func(p *Process) {
		b.Arrive(p)
		done = true
	})
	s.Run()
	if !done || b.Generation() != 1 {
		t.Fatal("size-1 barrier should pass through")
	}
}

func TestBarrierInvalidSizePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	New().NewBarrier(0)
}

func TestDeadlockDetection(t *testing.T) {
	s := New()
	c := s.NewCond()
	s.Spawn("stuck", 0, func(p *Process) { c.Wait(p) })
	defer func() {
		if recover() == nil {
			t.Fatal("expected deadlock panic")
		}
	}()
	s.Run()
}

func TestLiveCount(t *testing.T) {
	s := New()
	if s.Live() != 0 {
		t.Fatal("live != 0 initially")
	}
	s.Spawn("a", 0, func(p *Process) { p.Sleep(1) })
	if s.Live() != 1 {
		t.Fatalf("live = %d after spawn, want 1", s.Live())
	}
	s.Run()
	if s.Live() != 0 {
		t.Fatalf("live = %d after run, want 0", s.Live())
	}
}

// Property: for any set of non-negative delays, events fire in sorted
// order and the final clock equals the max delay.
func TestPropertyEventOrdering(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		s := New()
		delays := make([]float64, len(raw))
		for i, r := range raw {
			delays[i] = float64(r) / 100.0
		}
		var fired []float64
		for _, d := range delays {
			d := d
			s.Schedule(d, func() { fired = append(fired, d) })
		}
		end := s.Run()
		if !sort.Float64sAreSorted(fired) {
			return false
		}
		maxd := 0.0
		for _, d := range delays {
			if d > maxd {
				maxd = d
			}
		}
		return end == maxd && len(fired) == len(delays)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: N sleeping processes with arbitrary schedules always finish,
// and the clock ends at the max cumulative sleep.
func TestPropertyProcessSleepTotals(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := New()
		n := 1 + rng.Intn(8)
		maxTotal := 0.0
		for i := 0; i < n; i++ {
			steps := 1 + rng.Intn(5)
			total := 0.0
			sleeps := make([]float64, steps)
			for j := range sleeps {
				sleeps[j] = float64(rng.Intn(100)) / 10.0
				total += sleeps[j]
			}
			if total > maxTotal {
				maxTotal = total
			}
			s.Spawn("p", 0, func(p *Process) {
				for _, d := range sleeps {
					p.Sleep(d)
				}
			})
		}
		end := s.Run()
		return math.Abs(end-maxTotal) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		for j := 0; j < 1000; j++ {
			s.Schedule(float64(j%17), func() {})
		}
		s.Run()
	}
}

func BenchmarkProcessContextSwitch(b *testing.B) {
	s := New()
	s.Spawn("p", 0, func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	b.ResetTimer()
	s.Run()
}

func TestReset(t *testing.T) {
	s := New()
	s.Spawn("p", 0, func(p *Process) { p.Sleep(3) })
	if err := s.Reset(); err == nil {
		t.Fatal("Reset accepted with pending events")
	}
	s.Run()
	if s.Now() != 3 {
		t.Fatalf("Now = %v, want 3", s.Now())
	}
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
	if s.Now() != 0 {
		t.Fatalf("Now after Reset = %v, want 0", s.Now())
	}
	// A second run on the reset kernel behaves like a fresh one.
	s.Spawn("q", 0, func(p *Process) { p.Sleep(2) })
	if end := s.Run(); end != 2 {
		t.Fatalf("second run ended at %v, want 2", end)
	}
}

func TestResetRefusesLiveProcess(t *testing.T) {
	s := New()
	c := s.NewCond()
	s.Spawn("waiter", 0, func(p *Process) { c.Wait(p) })
	s.Schedule(1, func() {}) // keep the queue non-empty so Run returns
	s.RunUntil(0.5)
	if err := s.Reset(); err == nil {
		t.Fatal("Reset accepted with a parked process")
	}
	c.Signal()
	s.Run()
	if err := s.Reset(); err != nil {
		t.Fatal(err)
	}
}
