package des

import (
	"container/heap"
	"testing"
)

// boxedEvent / boxedHeap reproduce the previous event queue — a
// container/heap of *event boxes — as the baseline the slice-backed
// 4-ary queue is measured against. Every push allocates a box and
// every operation goes through the interface-typed heap.Interface
// methods.
type boxedEvent struct {
	time float64
	seq  uint64
}

type boxedHeap []*boxedEvent

func (h boxedHeap) Len() int { return len(h) }
func (h boxedHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h boxedHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *boxedHeap) Push(x interface{}) { *h = append(*h, x.(*boxedEvent)) }
func (h *boxedHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// The queue benchmarks run the canonical DES hold workload: a warm
// queue of size N, then pop-one/push-one per operation with
// near-future times — the steady-state pattern of a replay.

const benchQueueSize = 1024

func lcg(state *uint64) uint64 {
	*state = *state*6364136223846793005 + 1442695040888963407
	return *state
}

func BenchmarkEventQueue4ary(b *testing.B) {
	var q eventQueue
	state := uint64(1)
	var seq uint64
	for i := 0; i < benchQueueSize; i++ {
		seq++
		q.push(event{time: float64(lcg(&state) % 4096), seq: seq})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := q.pop()
		seq++
		q.push(event{time: e.time + float64(lcg(&state)%128), seq: seq})
	}
}

func BenchmarkEventQueueBoxedHeap(b *testing.B) {
	var h boxedHeap
	state := uint64(1)
	var seq uint64
	for i := 0; i < benchQueueSize; i++ {
		seq++
		heap.Push(&h, &boxedEvent{time: float64(lcg(&state) % 4096), seq: seq})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := heap.Pop(&h).(*boxedEvent)
		seq++
		heap.Push(&h, &boxedEvent{time: e.time + float64(lcg(&state)%128), seq: seq})
	}
}

// BenchmarkKernelScheduleRun measures the whole Schedule+dispatch
// path: allocs/op is the per-event kernel overhead a replay pays.
func BenchmarkKernelScheduleRun(b *testing.B) {
	s := New()
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Schedule(float64(i%7), fn)
		if s.Pending() >= 512 {
			s.Run()
		}
	}
	s.Run()
}

// BenchmarkKernelSleepChain measures the process wakeup path (the
// closure-free activation events): one process sleeping b.N times.
func BenchmarkKernelSleepChain(b *testing.B) {
	s := New()
	b.ReportAllocs()
	b.ResetTimer()
	s.Spawn("sleeper", 0, func(p *Process) {
		for i := 0; i < b.N; i++ {
			p.Sleep(1)
		}
	})
	s.Run()
}
