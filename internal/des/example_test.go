package des_test

import (
	"fmt"

	"repro/internal/des"
)

// Two processes ping-pong through a queue entirely in virtual time.
func Example() {
	sim := des.New()
	q := sim.NewQueue()
	sim.Spawn("producer", 0, func(p *des.Process) {
		for i := 1; i <= 3; i++ {
			p.Sleep(1.5)
			q.Put(i)
		}
	})
	sim.Spawn("consumer", 0, func(p *des.Process) {
		for i := 0; i < 3; i++ {
			v := q.Get(p)
			fmt.Printf("t=%.1f got %v\n", p.Now(), v)
		}
	})
	end := sim.Run()
	fmt.Printf("simulation ended at t=%.1f\n", end)
	// Output:
	// t=1.5 got 1
	// t=3.0 got 2
	// t=4.5 got 3
	// simulation ended at t=4.5
}

// A barrier releases all parties when the last one arrives.
func ExampleBarrier() {
	sim := des.New()
	b := sim.NewBarrier(3)
	for i := 1; i <= 3; i++ {
		delay := float64(i)
		sim.Spawn(fmt.Sprintf("p%d", i), 0, func(p *des.Process) {
			p.Sleep(delay)
			b.Arrive(p)
			fmt.Printf("released at t=%.0f\n", p.Now())
		})
	}
	sim.Run()
	// Output:
	// released at t=3
	// released at t=3
	// released at t=3
}
