// Package des provides a deterministic discrete-event simulation kernel.
//
// A Simulation owns a virtual clock and an event queue ordered by
// (time, sequence). Plain callback events are scheduled with Schedule.
// Blocking, goroutine-backed activities are modelled by Process: each
// process runs in its own goroutine but only ever executes while it
// holds the kernel's execution token, so simulations are fully
// deterministic and race-free regardless of GOMAXPROCS.
package des

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
)

// Event is a scheduled callback.
type event struct {
	time float64
	seq  uint64
	fn   func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(*event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Simulation is a discrete-event simulator. The zero value is not
// usable; create one with New.
type Simulation struct {
	now     float64
	seq     uint64
	queue   eventHeap
	yielded chan yieldKind // processes signal the driver here
	running bool
	// live counts processes that have been started and not yet finished.
	live int
	// Trace, when non-nil, receives a line per executed event (debug aid).
	Trace func(t float64, what string)
}

type yieldKind int

const (
	yieldParked yieldKind = iota
	yieldFinished
)

// New returns an empty simulation whose clock starts at 0.
func New() *Simulation {
	return &Simulation{yielded: make(chan yieldKind)}
}

// Now returns the current virtual time in seconds.
func (s *Simulation) Now() float64 { return s.now }

// Schedule registers fn to run at Now()+delay. A negative delay is an
// error and panics: events cannot run in the past.
func (s *Simulation) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("des: Schedule with invalid delay %v at t=%v", delay, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{time: s.now + delay, seq: s.seq, fn: fn})
}

// ScheduleAt registers fn to run at the absolute time t (>= Now()).
// The event fires at exactly t: it is enqueued directly rather than
// via Schedule(t-Now()), whose now+(t-now) round trip can land one
// ulp off t and would break SleepUntil's bit-identical guarantee.
func (s *Simulation) ScheduleAt(t float64, fn func()) {
	if t < s.now || math.IsNaN(t) {
		panic(fmt.Sprintf("des: ScheduleAt %v before now %v", t, s.now))
	}
	s.seq++
	heap.Push(&s.queue, &event{time: t, seq: s.seq, fn: fn})
}

// Pending reports the number of queued events.
func (s *Simulation) Pending() int { return len(s.queue) }

// Live reports the number of started-but-unfinished processes.
func (s *Simulation) Live() int { return s.live }

// Run executes events until the queue is empty, then returns the final
// virtual time. Processes that are still parked when the queue drains
// are considered deadlocked; Run panics listing them.
func (s *Simulation) Run() float64 {
	return s.RunUntil(math.Inf(1))
}

// RunUntil executes events with time <= limit and returns the clock.
// Events scheduled beyond the limit remain queued.
func (s *Simulation) RunUntil(limit float64) float64 {
	if s.running {
		panic("des: nested Run")
	}
	s.running = true
	defer func() { s.running = false }()
	for len(s.queue) > 0 {
		if s.queue[0].time > limit {
			s.now = limit
			return s.now
		}
		e := heap.Pop(&s.queue).(*event)
		if e.time < s.now {
			panic("des: time went backwards")
		}
		s.now = e.time
		if s.Trace != nil {
			s.Trace(s.now, "event")
		}
		e.fn()
	}
	if s.live > 0 {
		panic(fmt.Sprintf("des: deadlock: %d process(es) parked with empty event queue at t=%v", s.live, s.now))
	}
	return s.now
}

// Reset rewinds the clock and event sequence to zero so the
// simulation can host another run whose timings are bit-identical to
// a fresh kernel's (replaying at a large clock offset changes float64
// rounding). It refuses to reset a busy kernel: all events must have
// drained and all processes finished.
func (s *Simulation) Reset() error {
	if s.running {
		return fmt.Errorf("des: Reset during Run")
	}
	if len(s.queue) > 0 {
		return fmt.Errorf("des: Reset with %d pending event(s)", len(s.queue))
	}
	if s.live > 0 {
		return fmt.Errorf("des: Reset with %d live process(es)", s.live)
	}
	s.now = 0
	s.seq = 0
	return nil
}

// Step executes exactly one event, if any, and reports whether one ran.
func (s *Simulation) Step() bool {
	if len(s.queue) == 0 {
		return false
	}
	e := heap.Pop(&s.queue).(*event)
	s.now = e.time
	e.fn()
	return true
}

// ---------------------------------------------------------------------------
// Processes

// Process is a goroutine-backed simulated activity. Its body only runs
// while it holds the simulation token; every blocking primitive
// (Sleep, WaitChan-style conditions) parks the goroutine and returns
// control to the kernel.
type Process struct {
	sim    *Simulation
	name   string
	resume chan struct{}
	done   bool
}

// Spawn creates a process executing body and schedules its start after
// delay seconds. body receives the process handle for blocking calls.
func (s *Simulation) Spawn(name string, delay float64, body func(p *Process)) *Process {
	p := &Process{sim: s, name: name, resume: make(chan struct{})}
	s.live++
	go func() {
		<-p.resume // wait for first activation
		defer func() {
			if r := recover(); r != nil {
				// Re-panic on the driver's side would be nicer, but the
				// driver is blocked on s.yielded; report and crash loudly.
				p.done = true
				s.yielded <- yieldFinished
				panic(fmt.Sprintf("des: process %q panicked: %v", p.name, r))
			}
		}()
		body(p)
		p.done = true
		s.yielded <- yieldFinished
	}()
	s.Schedule(delay, func() { s.activate(p) })
	return p
}

// activate hands the token to p and waits for it to park or finish.
func (s *Simulation) activate(p *Process) {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	k := <-s.yielded
	if k == yieldFinished {
		s.live--
	}
}

// park gives the token back to the driver and blocks until reactivated.
func (p *Process) park() {
	p.sim.yielded <- yieldParked
	<-p.resume
}

// Name returns the process name given at Spawn.
func (p *Process) Name() string { return p.name }

// Sim returns the owning simulation.
func (p *Process) Sim() *Simulation { return p.sim }

// Now returns the current virtual time.
func (p *Process) Now() float64 { return p.sim.now }

// Sleep suspends the process for d seconds of virtual time.
func (p *Process) Sleep(d float64) {
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("des: Sleep with invalid duration %v", d))
	}
	s := p.sim
	s.Schedule(d, func() { s.activate(p) })
	p.park()
}

// SleepUntil suspends the process until the absolute virtual time t
// (>= Now()). It is the single-event form of a sleep whose end time
// was computed elsewhere: replay uses it to aggregate a long run of
// identical compute records into one wakeup at the exact instant the
// individual sleeps would have reached.
func (p *Process) SleepUntil(t float64) {
	if t < p.sim.now || math.IsNaN(t) {
		panic(fmt.Sprintf("des: SleepUntil %v before now %v", t, p.sim.now))
	}
	s := p.sim
	s.ScheduleAt(t, func() { s.activate(p) })
	p.park()
}

// Cond is a single-waiter wakeup slot: a process waits on it and any
// event callback may signal it. It is the building block for mailboxes,
// semaphores and barriers in higher layers.
type Cond struct {
	sim     *Simulation
	waiter  *Process
	pending bool // signal arrived before anyone waited
}

// NewCond returns a condition bound to the simulation.
func (s *Simulation) NewCond() *Cond { return &Cond{sim: s} }

// Wait parks the process until Signal is called. If a signal is already
// pending, it is consumed and Wait returns immediately (still yielding
// once to preserve determinism is unnecessary: no time passes).
func (c *Cond) Wait(p *Process) {
	if c.pending {
		c.pending = false
		return
	}
	if c.waiter != nil {
		panic("des: Cond has two waiters")
	}
	c.waiter = p
	p.park()
}

// Signal wakes the waiting process (as a scheduled event at the current
// time), or records a pending signal if none waits yet.
func (c *Cond) Signal() {
	if c.waiter == nil {
		c.pending = true
		return
	}
	w := c.waiter
	c.waiter = nil
	c.sim.Schedule(0, func() { c.sim.activate(w) })
}

// Waiting reports whether a process is parked on the cond.
func (c *Cond) Waiting() bool { return c.waiter != nil }

// ---------------------------------------------------------------------------
// Queue: a FIFO with blocking receive, usable from process context.

// Queue is an unbounded FIFO of interface values with a single blocked
// reader at a time (multiple readers are served in arrival order).
type Queue struct {
	sim     *Simulation
	items   []interface{}
	readers []*Process
}

// NewQueue returns an empty queue bound to the simulation.
func (s *Simulation) NewQueue() *Queue { return &Queue{sim: s} }

// Put appends v and wakes the oldest waiting reader, if any. Put is
// safe to call from event callbacks and from process context.
func (q *Queue) Put(v interface{}) {
	q.items = append(q.items, v)
	if len(q.readers) > 0 {
		r := q.readers[0]
		q.readers = q.readers[1:]
		q.sim.Schedule(0, func() { q.sim.activate(r) })
	}
}

// Get removes and returns the head item, parking the process while the
// queue is empty.
func (q *Queue) Get(p *Process) interface{} {
	for len(q.items) == 0 {
		q.readers = append(q.readers, p)
		p.park()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// TryGet removes the head item without blocking; ok reports success.
func (q *Queue) TryGet() (v interface{}, ok bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// ---------------------------------------------------------------------------
// Barrier: N-party synchronization usable from process context.

// Barrier blocks processes until n of them have arrived.
type Barrier struct {
	sim     *Simulation
	n       int
	waiting []*Process
	// generation increments each time the barrier opens; used only for
	// introspection in tests.
	generation int
}

// NewBarrier returns a barrier for n parties.
func (s *Simulation) NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("des: barrier size must be >= 1")
	}
	return &Barrier{sim: s, n: n}
}

// Arrive blocks until n processes have arrived, then releases them all.
func (b *Barrier) Arrive(p *Process) {
	if b.n == 1 {
		b.generation++
		return
	}
	if len(b.waiting)+1 == b.n {
		// Last arrival: release everyone.
		waiters := b.waiting
		b.waiting = nil
		b.generation++
		// Deterministic release order: by arrival.
		sort.SliceStable(waiters, func(i, j int) bool { return false })
		for _, w := range waiters {
			w := w
			b.sim.Schedule(0, func() { b.sim.activate(w) })
		}
		return
	}
	b.waiting = append(b.waiting, p)
	p.park()
}

// Generation returns how many times the barrier has opened.
func (b *Barrier) Generation() int { return b.generation }
