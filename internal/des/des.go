// Package des provides a deterministic discrete-event simulation kernel.
//
// A Simulation owns a virtual clock and an event queue ordered by
// (time, sequence). Plain callback events are scheduled with Schedule.
// Blocking, goroutine-backed activities are modelled by Process: each
// process runs in its own goroutine but only ever executes while it
// holds the kernel's execution token, so simulations are fully
// deterministic and race-free regardless of GOMAXPROCS.
//
// # Virtual time and epochs
//
// The clock is split into an epoch base and an in-epoch offset:
// AbsNow() = Base() + Now(). All scheduling arithmetic happens on the
// offset, and unless Rebase is ever called the base stays zero and
// Now() behaves exactly like an absolute clock. Rebase folds the
// current offset into the base and shifts every pending event, which
// keeps in-epoch magnitudes small: two simulation stretches that are
// identical up to a time translation then compute bit-identical
// offsets regardless of how much virtual time precedes them. The
// replay fast-forward engine leans on this — a steady-state round
// re-simulated from a rebased boundary reproduces the exact float64s
// of the previous round, so skipped rounds can be costed in closed
// form (AdvanceBase) without losing bit equality.
package des

import (
	"fmt"
	"math"
)

// Event kinds. Activation events carry the process to hand the token
// to directly instead of a closure, which keeps the hot Sleep/wakeup
// path allocation-free. Auxiliary events are callbacks whose creator
// guarantees they are no-ops once its own state has moved on (e.g.
// superseded flow-completion estimates guarded by an epoch counter);
// they are excluded from PendingReal so quiescence checks can ignore
// them.
const (
	evFn byte = iota
	evActivate
	evAux
)

// event is a scheduled occurrence. Events are stored by value in the
// queue slice: pushing never allocates once the slice has warmed up,
// unlike the previous container/heap queue which boxed a *event per
// Schedule call.
type event struct {
	time float64
	seq  uint64
	kind byte
	proc *Process // evActivate
	fn   func()   // evFn, evAux
}

// eventQueue is a slice-backed 4-ary min-heap ordered by (time, seq).
// The wider fan-out halves the tree depth of the binary heap, trading
// slightly more comparisons per sift-down for far fewer cache-missing
// levels — a consistent win for the DES pop-push workload where most
// inserted events are near-future.
type eventQueue struct {
	a []event
}

func (q *eventQueue) len() int { return len(q.a) }

// eventLess is the queue's total order: (time, seq). Equal-time
// events fire in schedule order — the determinism guarantee the
// fast-forward bit-identity rests on. Small enough to inline.
func eventLess(a, b event) bool {
	if a.time != b.time {
		return a.time < b.time
	}
	return a.seq < b.seq
}

func (q *eventQueue) push(e event) {
	q.a = append(q.a, e)
	a := q.a
	i := len(a) - 1
	for i > 0 {
		p := (i - 1) / 4
		if eventLess(a[p], a[i]) {
			break
		}
		a[i], a[p] = a[p], a[i]
		i = p
	}
}

func (q *eventQueue) pop() event {
	a := q.a
	top := a[0]
	n := len(a) - 1
	a[0] = a[n]
	a[n] = event{} // release the closure/process reference; the slot stays pooled in cap
	a = a[:n]
	q.a = a
	// Sift the relocated tail element down.
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		last := first + 4
		if last > n {
			last = n
		}
		m := first
		for c := first + 1; c < last; c++ {
			if eventLess(a[c], a[m]) {
				m = c
			}
		}
		if eventLess(a[i], a[m]) {
			break
		}
		a[i], a[m] = a[m], a[i]
		i = m
	}
	return top
}

// reheap re-establishes the heap invariant over the whole slice
// (Floyd's bottom-up heapify) after an operation that may have
// perturbed relative order, such as a uniform time shift whose
// rounding collapses distinct times into ties.
func (q *eventQueue) reheap() {
	a := q.a
	n := len(a)
	for i := (n - 2) / 4; i >= 0; i-- {
		for j := i; ; {
			first := 4*j + 1
			if first >= n {
				break
			}
			last := first + 4
			if last > n {
				last = n
			}
			m := first
			for c := first + 1; c < last; c++ {
				if eventLess(a[c], a[m]) {
					m = c
				}
			}
			if eventLess(a[j], a[m]) {
				break
			}
			a[j], a[m] = a[m], a[j]
			j = m
		}
	}
}

// Simulation is a discrete-event simulator. The zero value is not
// usable; create one with New.
type Simulation struct {
	now     float64 // offset within the current epoch
	base    float64 // accumulated epoch base; AbsNow = base + now
	seq     uint64
	queue   eventQueue
	aux     int            // pending evAux events
	yielded chan yieldKind // processes signal the driver here
	running bool
	// live counts processes that have been started and not yet finished.
	live  int
	procs []*Process // every spawned process, for Shutdown teardown
	hooks []func(shift float64)
	// Trace, when non-nil, receives a line per executed event (debug aid).
	Trace func(t float64, what string)
}

type yieldKind int

const (
	yieldParked yieldKind = iota
	yieldFinished
)

// New returns an empty simulation whose clock starts at 0.
func New() *Simulation {
	return &Simulation{yielded: make(chan yieldKind)}
}

// Now returns the current virtual time within the epoch, in seconds.
// Without Rebase calls the base is zero and this is the absolute
// virtual time.
func (s *Simulation) Now() float64 { return s.now }

// Base returns the accumulated epoch base (zero unless Rebase or
// AdvanceBase was used).
func (s *Simulation) Base() float64 { return s.base }

// AbsNow returns the absolute virtual time: Base() + Now().
func (s *Simulation) AbsNow() float64 { return s.base + s.now }

// Schedule registers fn to run at Now()+delay. A negative delay is an
// error and panics: events cannot run in the past.
func (s *Simulation) Schedule(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("des: Schedule with invalid delay %v at t=%v", delay, s.now))
	}
	s.seq++
	s.queue.push(event{time: s.now + delay, seq: s.seq, kind: evFn, fn: fn})
}

// ScheduleAt registers fn to run at the absolute in-epoch time t
// (>= Now()). The event fires at exactly t: it is enqueued directly
// rather than via Schedule(t-Now()), whose now+(t-now) round trip can
// land one ulp off t and would break SleepUntil's bit-identical
// guarantee.
func (s *Simulation) ScheduleAt(t float64, fn func()) {
	if t < s.now || math.IsNaN(t) {
		panic(fmt.Sprintf("des: ScheduleAt %v before now %v", t, s.now))
	}
	s.seq++
	s.queue.push(event{time: t, seq: s.seq, kind: evFn, fn: fn})
}

// ScheduleAux registers an auxiliary callback at Now()+delay: one the
// caller guarantees is a no-op whenever its creator's state has been
// superseded by the time it fires (flow-completion estimates guarded
// by an epoch counter are the canonical case). Aux events execute
// normally but are excluded from PendingReal, so quiescence checks
// can ignore stale ones still queued.
func (s *Simulation) ScheduleAux(delay float64, fn func()) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("des: ScheduleAux with invalid delay %v at t=%v", delay, s.now))
	}
	s.seq++
	s.queue.push(event{time: s.now + delay, seq: s.seq, kind: evAux, fn: fn})
	s.aux++
}

// DiscardAux removes every pending auxiliary event without running
// it and returns the number removed. Auxiliary events are by contract
// no-ops once their creator's state has been superseded (see
// ScheduleAux); a layer that knows all of its pending aux events are
// stale — the network when its last flow completes — can drop them
// wholesale instead of paying a pop and a dispatch per event, plus a
// time shift per event on every intervening Rebase. The caller must
// own every aux event in the simulation: the queue does not track who
// scheduled what.
func (s *Simulation) DiscardAux() int {
	if s.aux == 0 {
		return 0
	}
	a := s.queue.a
	keep := a[:0]
	for _, e := range a {
		if e.kind == evAux {
			continue
		}
		keep = append(keep, e)
	}
	dropped := len(a) - len(keep)
	// Zero the tail so dropped closures are collectable.
	for i := len(keep); i < len(a); i++ {
		a[i] = event{}
	}
	s.queue.a = keep
	s.queue.reheap()
	s.aux = 0
	return dropped
}

// scheduleActivate registers a token handoff to p at Now()+delay
// without allocating a closure.
func (s *Simulation) scheduleActivate(delay float64, p *Process) {
	if delay < 0 || math.IsNaN(delay) {
		panic(fmt.Sprintf("des: activation with invalid delay %v at t=%v", delay, s.now))
	}
	s.seq++
	s.queue.push(event{time: s.now + delay, seq: s.seq, kind: evActivate, proc: p})
}

// scheduleActivateAt is scheduleActivate at an exact in-epoch time.
func (s *Simulation) scheduleActivateAt(t float64, p *Process) {
	if t < s.now || math.IsNaN(t) {
		panic(fmt.Sprintf("des: activation at %v before now %v", t, s.now))
	}
	s.seq++
	s.queue.push(event{time: t, seq: s.seq, kind: evActivate, proc: p})
}

// Pending reports the number of queued events, auxiliary ones
// included.
func (s *Simulation) Pending() int { return s.queue.len() }

// PendingReal reports the number of queued non-auxiliary events —
// the ones that can still change simulation state.
func (s *Simulation) PendingReal() int { return s.queue.len() - s.aux }

// Live reports the number of started-but-unfinished processes.
func (s *Simulation) Live() int { return s.live }

// dispatch executes one popped event.
func (s *Simulation) dispatch(e event) {
	switch e.kind {
	case evActivate:
		s.activate(e.proc)
	default:
		e.fn()
	}
}

// Run executes events until the queue is empty, then returns the final
// virtual time. Processes that are still parked when the queue drains
// are considered deadlocked; Run panics listing them.
func (s *Simulation) Run() float64 {
	return s.RunUntil(math.Inf(1))
}

// RunUntil executes events with time <= limit and returns the clock.
// Events scheduled beyond the limit remain queued. The limit is an
// in-epoch offset.
func (s *Simulation) RunUntil(limit float64) float64 {
	if s.running {
		panic("des: nested Run")
	}
	s.running = true
	defer func() { s.running = false }()
	for s.queue.len() > 0 {
		if s.queue.a[0].time > limit {
			s.now = limit
			return s.now
		}
		e := s.queue.pop()
		if e.kind == evAux {
			s.aux--
		}
		if e.time < s.now {
			panic("des: time went backwards")
		}
		s.now = e.time
		if s.Trace != nil {
			s.Trace(s.now, "event")
		}
		s.dispatch(e)
	}
	if s.live > 0 {
		panic(fmt.Sprintf("des: deadlock: %d process(es) parked with empty event queue at t=%v", s.live, s.now))
	}
	return s.now
}

// RunWindow executes events with time strictly below limit and
// returns the number dispatched. It is the driving primitive of
// partitioned (multi-kernel) simulation: unlike Run, an empty queue
// with live processes is not a deadlock — the missing wakeups arrive
// later as cross-partition injections scheduled at or after the
// window boundary (conservative synchronization guarantees no
// injection ever lands inside a window already simulated). The clock
// is left at the last dispatched event, never advanced to the limit,
// so the final Now() of a partitioned run is the time of its last
// real event, exactly as in a monolithic run.
func (s *Simulation) RunWindow(limit float64) int {
	if s.running {
		panic("des: nested Run")
	}
	s.running = true
	defer func() { s.running = false }()
	dispatched := 0
	for s.queue.len() > 0 {
		if s.queue.a[0].time >= limit {
			return dispatched
		}
		e := s.queue.pop()
		if e.kind == evAux {
			s.aux--
		}
		if e.time < s.now {
			panic("des: time went backwards")
		}
		s.now = e.time
		if s.Trace != nil {
			s.Trace(s.now, "event")
		}
		s.dispatch(e)
		dispatched++
	}
	return dispatched
}

// PeekTime returns the time of the earliest pending event, if any.
// Window drivers use it to skip empty stretches: when every partition
// agrees nothing happens before t, the next window can open at t
// instead of grinding through vacant lookahead steps.
func (s *Simulation) PeekTime() (float64, bool) {
	if s.queue.len() == 0 {
		return 0, false
	}
	return s.queue.a[0].time, true
}

// Reset rewinds the clock, epoch base and event sequence to zero so
// the simulation can host another run whose timings are bit-identical
// to a fresh kernel's (replaying at a large clock offset changes
// float64 rounding). It refuses to reset a busy kernel: all events
// must have drained and all processes finished. Rebase hooks survive
// a reset; finished process handles are released.
func (s *Simulation) Reset() error {
	if s.running {
		return fmt.Errorf("des: Reset during Run")
	}
	if s.queue.len() > 0 {
		return fmt.Errorf("des: Reset with %d pending event(s)", s.queue.len())
	}
	if s.live > 0 {
		return fmt.Errorf("des: Reset with %d live process(es)", s.live)
	}
	s.now = 0
	s.base = 0
	s.seq = 0
	s.procs = s.procs[:0]
	return nil
}

// Step executes exactly one event, if any, and reports whether one ran.
func (s *Simulation) Step() bool {
	if s.queue.len() == 0 {
		return false
	}
	e := s.queue.pop()
	if e.kind == evAux {
		s.aux--
	}
	s.now = e.time
	s.dispatch(e)
	return true
}

// ---------------------------------------------------------------------------
// Epoch control: Rebase / AdvanceTo / AdvanceBase

// Rebase folds the current in-epoch offset into the epoch base:
// Base() grows by the returned shift, Now() becomes zero, and every
// pending event's time drops by the same shift. AbsNow() is
// unchanged, but all subsequent in-epoch arithmetic happens near
// zero — which is what makes translated re-runs of identical activity
// bit-reproducible. The uniform subtraction is monotone but not
// strictly order-preserving: rounding can collapse two distinct times
// into a tie whose (time, seq) order disagrees with the old heap
// layout, so the queue is re-heapified to keep the schedule-order
// guarantee for equal-time events. Registered OnRebase hooks observe
// the shift so layers holding in-epoch timestamps (e.g. the network's
// last-update mark) can adjust.
func (s *Simulation) Rebase() float64 {
	shift := s.now
	if shift == 0 {
		return 0
	}
	s.base += shift
	s.now = 0
	a := s.queue.a
	for i := range a {
		a[i].time -= shift
	}
	s.queue.reheap()
	for _, h := range s.hooks {
		h(shift)
	}
	return shift
}

// OnRebase registers a hook invoked by Rebase with the applied shift.
// Layers that cache in-epoch timestamps register one at construction.
func (s *Simulation) OnRebase(h func(shift float64)) {
	s.hooks = append(s.hooks, h)
}

// AdvanceTo moves the in-epoch clock forward to t without executing
// anything — the bulk alternative to draining timer events one at a
// time when the caller knows nothing happens before t (the netsim
// idle-skip follow-on in ROADMAP.md; the fast-forward engine itself
// jumps across whole rounds via Rebase + AdvanceBase instead, since
// its pending wakeups must stay put). It panics if an event is
// pending before t (skipping it would corrupt causality).
func (s *Simulation) AdvanceTo(t float64) {
	if t < s.now || math.IsNaN(t) {
		panic(fmt.Sprintf("des: AdvanceTo %v before now %v", t, s.now))
	}
	if s.queue.len() > 0 && s.queue.a[0].time < t {
		panic(fmt.Sprintf("des: AdvanceTo %v past pending event at %v", t, s.queue.a[0].time))
	}
	s.now = t
}

// AdvanceBase adds delta to the epoch base `rounds` times by iterated
// addition. This is the closed-form jump of the fast-forward engine:
// simulating one steady-state round ends in a Rebase that grows the
// base by exactly delta, so skipping m rounds must perform the same
// m float64 additions — iterated, not multiplied — to land on the
// bit-identical base a full simulation would reach.
func (s *Simulation) AdvanceBase(delta float64, rounds int) {
	if delta < 0 || math.IsNaN(delta) {
		panic(fmt.Sprintf("des: AdvanceBase with invalid delta %v", delta))
	}
	for i := 0; i < rounds; i++ {
		s.base += delta
	}
}

// ---------------------------------------------------------------------------
// Processes

// Process is a goroutine-backed simulated activity. Its body only runs
// while it holds the simulation token; every blocking primitive
// (Sleep, WaitChan-style conditions) parks the goroutine and returns
// control to the kernel.
type Process struct {
	sim    *Simulation
	name   string
	resume chan struct{}
	done   bool
	killed bool
}

// errKilled is the sentinel panic value that unwinds a process
// goroutine torn down by Shutdown.
type killedSentinel struct{}

// Spawn creates a process executing body and schedules its start after
// delay seconds. body receives the process handle for blocking calls.
func (s *Simulation) Spawn(name string, delay float64, body func(p *Process)) *Process {
	p := &Process{sim: s, name: name, resume: make(chan struct{})}
	s.live++
	s.procs = append(s.procs, p)
	//dperfvet:allow simpurity process goroutines only run while holding the kernel's execution token, so scheduling is fully sequenced and deterministic
	go func() {
		<-p.resume // wait for first activation
		if p.killed {
			p.done = true
			s.yielded <- yieldFinished
			return
		}
		defer func() {
			if r := recover(); r != nil {
				if _, ok := r.(killedSentinel); ok {
					p.done = true
					s.yielded <- yieldFinished
					return
				}
				// Re-panic on the driver's side would be nicer, but the
				// driver is blocked on s.yielded; report and crash loudly.
				p.done = true
				s.yielded <- yieldFinished
				panic(fmt.Sprintf("des: process %q panicked: %v", p.name, r))
			}
		}()
		body(p)
		p.done = true
		s.yielded <- yieldFinished
	}()
	s.scheduleActivate(delay, p)
	return p
}

// activate hands the token to p and waits for it to park or finish.
func (s *Simulation) activate(p *Process) {
	if p.done {
		return
	}
	p.resume <- struct{}{}
	k := <-s.yielded
	if k == yieldFinished {
		s.live--
	}
}

// park gives the token back to the driver and blocks until reactivated.
func (p *Process) park() {
	p.sim.yielded <- yieldParked
	<-p.resume
	if p.killed {
		panic(killedSentinel{})
	}
}

// Shutdown tears down every live process goroutine: each one is
// resumed with the killed flag set and unwinds instead of continuing
// its body. Pending events are dropped and the kernel is left
// resettable. It is the cleanup path for a simulation abandoned
// mid-run (a stalled replay), where parked process goroutines would
// otherwise leak for the lifetime of the program.
func (s *Simulation) Shutdown() {
	if s.running {
		panic("des: Shutdown during Run")
	}
	for _, p := range s.procs {
		if p.done {
			continue
		}
		p.killed = true
		p.resume <- struct{}{}
		<-s.yielded // the goroutine reports yieldFinished and exits
		s.live--
	}
	s.procs = s.procs[:0]
	s.queue.a = s.queue.a[:0]
	s.aux = 0
	s.live = 0
}

// Name returns the process name given at Spawn.
func (p *Process) Name() string { return p.name }

// Sim returns the owning simulation.
func (p *Process) Sim() *Simulation { return p.sim }

// Now returns the current virtual time.
func (p *Process) Now() float64 { return p.sim.now }

// Sleep suspends the process for d seconds of virtual time.
func (p *Process) Sleep(d float64) {
	if d < 0 || math.IsNaN(d) {
		panic(fmt.Sprintf("des: Sleep with invalid duration %v", d))
	}
	s := p.sim
	s.scheduleActivate(d, p)
	p.park()
}

// SleepUntil suspends the process until the absolute virtual time t
// (>= Now()). It is the single-event form of a sleep whose end time
// was computed elsewhere: replay uses it to aggregate a long run of
// identical compute records into one wakeup at the exact instant the
// individual sleeps would have reached.
func (p *Process) SleepUntil(t float64) {
	if t < p.sim.now || math.IsNaN(t) {
		panic(fmt.Sprintf("des: SleepUntil %v before now %v", t, p.sim.now))
	}
	s := p.sim
	s.scheduleActivateAt(t, p)
	p.park()
}

// Cond is a single-waiter wakeup slot: a process waits on it and any
// event callback may signal it. It is the building block for mailboxes,
// semaphores and barriers in higher layers.
type Cond struct {
	sim     *Simulation
	waiter  *Process
	pending bool // signal arrived before anyone waited
}

// NewCond returns a condition bound to the simulation.
func (s *Simulation) NewCond() *Cond { return &Cond{sim: s} }

// Wait parks the process until Signal is called. If a signal is already
// pending, it is consumed and Wait returns immediately (still yielding
// once to preserve determinism is unnecessary: no time passes).
func (c *Cond) Wait(p *Process) {
	if c.pending {
		c.pending = false
		return
	}
	if c.waiter != nil {
		panic("des: Cond has two waiters")
	}
	c.waiter = p
	p.park()
}

// Signal wakes the waiting process (as a scheduled event at the current
// time), or records a pending signal if none waits yet.
func (c *Cond) Signal() {
	if c.waiter == nil {
		c.pending = true
		return
	}
	w := c.waiter
	c.waiter = nil
	c.sim.scheduleActivate(0, w)
}

// Waiting reports whether a process is parked on the cond.
func (c *Cond) Waiting() bool { return c.waiter != nil }

// ---------------------------------------------------------------------------
// Queue: a FIFO with blocking receive, usable from process context.

// Queue is an unbounded FIFO of interface values with a single blocked
// reader at a time (multiple readers are served in arrival order).
type Queue struct {
	sim     *Simulation
	items   []interface{}
	readers []*Process
}

// NewQueue returns an empty queue bound to the simulation.
func (s *Simulation) NewQueue() *Queue { return &Queue{sim: s} }

// Put appends v and wakes the oldest waiting reader, if any. Put is
// safe to call from event callbacks and from process context.
func (q *Queue) Put(v interface{}) {
	q.items = append(q.items, v)
	if len(q.readers) > 0 {
		r := q.readers[0]
		q.readers = q.readers[1:]
		q.sim.scheduleActivate(0, r)
	}
}

// Get removes and returns the head item, parking the process while the
// queue is empty.
func (q *Queue) Get(p *Process) interface{} {
	for len(q.items) == 0 {
		q.readers = append(q.readers, p)
		p.park()
	}
	v := q.items[0]
	q.items = q.items[1:]
	return v
}

// TryGet removes the head item without blocking; ok reports success.
func (q *Queue) TryGet() (v interface{}, ok bool) {
	if len(q.items) == 0 {
		return nil, false
	}
	v = q.items[0]
	q.items = q.items[1:]
	return v, true
}

// Len returns the number of queued items.
func (q *Queue) Len() int { return len(q.items) }

// ---------------------------------------------------------------------------
// Barrier: N-party synchronization usable from process context.

// Barrier blocks processes until n of them have arrived.
type Barrier struct {
	sim     *Simulation
	n       int
	waiting []*Process
	// generation increments each time the barrier opens; used only for
	// introspection in tests.
	generation int
}

// NewBarrier returns a barrier for n parties.
func (s *Simulation) NewBarrier(n int) *Barrier {
	if n < 1 {
		panic("des: barrier size must be >= 1")
	}
	return &Barrier{sim: s, n: n}
}

// Arrive blocks until n processes have arrived, then releases them all
// in arrival order.
func (b *Barrier) Arrive(p *Process) {
	if b.n == 1 {
		b.generation++
		return
	}
	if len(b.waiting)+1 == b.n {
		// Last arrival: release everyone, in arrival order.
		waiters := b.waiting
		b.waiting = nil
		b.generation++
		for _, w := range waiters {
			b.sim.scheduleActivate(0, w)
		}
		return
	}
	b.waiting = append(b.waiting, p)
	p.park()
}

// Generation returns how many times the barrier has opened.
func (b *Barrier) Generation() int { return b.generation }
