// Package platform describes simulated computing platforms: the set of
// hosts, routers, links and routes over which experiments run. It
// provides generators for the three platforms of the paper's
// evaluation — the Grid'5000 Bordeplage-like cluster (Stage-1), the
// Daisy xDSL topology (Stage-2A, Fig. 8) and a campus LAN
// (Stage-2B) — plus a text serialization so platform files can be
// written, versioned and parsed like SimGrid platform descriptions.
package platform

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/des"
	"repro/internal/netsim"
	"repro/internal/proximity"
)

// Node is a vertex of the platform graph: a compute host or a pure
// forwarding element (router/DSLAM/switch).
type Node struct {
	Name   string
	IP     proximity.Addr
	Speed  float64 // flop/s; 0 for routers
	Router bool
}

// Edge joins two nodes through a named link.
type Edge struct {
	A, B      string
	LinkName  string
	Bandwidth float64 // bytes/s
	Latency   float64 // seconds
}

// Platform is an undirected graph of nodes and edges with shortest-path
// routing (fewest hops, then lowest total latency).
type Platform struct {
	Name string
	// Frontend names the well-connected submitter host, when the
	// platform has one (experiment platforms do).
	Frontend string
	nodes    map[string]*Node
	edges    []Edge
	adj      map[string][]int // node -> edge indices

	// routing cache: per source, predecessor tree. Guarded by mu so a
	// single platform graph can serve concurrent replays (sweeps share
	// one Platform across worker goroutines).
	mu        sync.Mutex
	predCache map[string]map[string]int // src -> node -> incoming edge index
}

// New returns an empty platform.
func New(name string) *Platform {
	return &Platform{
		Name:      name,
		nodes:     make(map[string]*Node),
		adj:       make(map[string][]int),
		predCache: make(map[string]map[string]int),
	}
}

// AddHost adds a compute host.
func (p *Platform) AddHost(name string, ip proximity.Addr, speed float64) error {
	return p.addNode(&Node{Name: name, IP: ip, Speed: speed})
}

// AddRouter adds a forwarding-only node.
func (p *Platform) AddRouter(name string) error {
	return p.addNode(&Node{Name: name, Router: true})
}

func (p *Platform) addNode(n *Node) error {
	if _, ok := p.nodes[n.Name]; ok {
		return fmt.Errorf("platform: duplicate node %q", n.Name)
	}
	if !n.Router && n.Speed <= 0 {
		return fmt.Errorf("platform: host %q needs positive speed", n.Name)
	}
	p.nodes[n.Name] = n
	return nil
}

// Connect adds an undirected edge between existing nodes.
func (p *Platform) Connect(a, b, linkName string, bandwidth, latency float64) error {
	if _, ok := p.nodes[a]; !ok {
		return fmt.Errorf("platform: unknown node %q", a)
	}
	if _, ok := p.nodes[b]; !ok {
		return fmt.Errorf("platform: unknown node %q", b)
	}
	if bandwidth <= 0 || latency < 0 {
		return fmt.Errorf("platform: link %q invalid bandwidth/latency", linkName)
	}
	for _, e := range p.edges {
		if e.LinkName == linkName {
			return fmt.Errorf("platform: duplicate link name %q", linkName)
		}
	}
	idx := len(p.edges)
	p.edges = append(p.edges, Edge{A: a, B: b, LinkName: linkName, Bandwidth: bandwidth, Latency: latency})
	p.adj[a] = append(p.adj[a], idx)
	p.adj[b] = append(p.adj[b], idx)
	p.mu.Lock()
	p.predCache = make(map[string]map[string]int) // invalidate
	p.mu.Unlock()
	return nil
}

// Node returns a node by name, or nil.
func (p *Platform) Node(name string) *Node { return p.nodes[name] }

// Hosts returns the names of all compute hosts, sorted. The frontend
// host, when set, is excluded: it submits work, it does not compute.
func (p *Platform) Hosts() []string {
	var out []string
	for name, n := range p.nodes {
		if !n.Router && name != p.Frontend {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Nodes returns all node names, sorted.
func (p *Platform) Nodes() []string {
	var out []string
	for name := range p.nodes {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Edges returns a copy of the edge list.
func (p *Platform) Edges() []Edge { return append([]Edge(nil), p.edges...) }

// Path returns the edge indices of the route from src to dst computed
// by BFS on hop count with latency as tie-break (deterministic).
func (p *Platform) Path(src, dst string) ([]int, error) {
	if _, ok := p.nodes[src]; !ok {
		return nil, fmt.Errorf("platform: unknown node %q", src)
	}
	if _, ok := p.nodes[dst]; !ok {
		return nil, fmt.Errorf("platform: unknown node %q", dst)
	}
	if src == dst {
		return nil, nil
	}
	p.mu.Lock()
	pred, ok := p.predCache[src]
	if !ok {
		pred = p.shortestPathTree(src)
		p.predCache[src] = pred
	}
	p.mu.Unlock()
	if _, reached := pred[dst]; !reached {
		return nil, fmt.Errorf("platform: %q unreachable from %q", dst, src)
	}
	// Walk predecessors from dst back to src.
	var rev []int
	cur := dst
	for cur != src {
		ei := pred[cur]
		rev = append(rev, ei)
		e := p.edges[ei]
		if e.A == cur {
			cur = e.B
		} else {
			cur = e.A
		}
	}
	// Reverse.
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	return rev, nil
}

// shortestPathTree runs Dijkstra with cost = (hops, latency) lexicographic.
func (p *Platform) shortestPathTree(src string) map[string]int {
	type cost struct {
		hops int
		lat  float64
	}
	dist := map[string]cost{src: {}}
	pred := make(map[string]int)
	visited := make(map[string]bool)
	for {
		// Extract unvisited node with min cost (linear scan: platforms
		// have at most ~1100 nodes, and trees are cached per source).
		var cur string
		best := cost{hops: math.MaxInt32, lat: math.Inf(1)}
		for name, d := range dist {
			if visited[name] {
				continue
			}
			if d.hops < best.hops || (d.hops == best.hops && d.lat < best.lat) ||
				(d.hops == best.hops && d.lat == best.lat && (cur == "" || name < cur)) {
				best = d
				cur = name
			}
		}
		if cur == "" {
			return pred
		}
		visited[cur] = true
		for _, ei := range p.adj[cur] {
			e := p.edges[ei]
			next := e.B
			if next == cur {
				next = e.A
			}
			nd := cost{hops: best.hops + 1, lat: best.lat + e.Latency}
			old, seen := dist[next]
			if !seen || nd.hops < old.hops || (nd.hops == old.hops && nd.lat < old.lat) {
				dist[next] = nd
				pred[next] = ei
			}
		}
	}
}

// Realize creates all hosts and links of the platform inside the given
// network. The platform itself serves as the network's RouteProvider,
// so construct the network as netsim.New(sim, platform) and then call
// platform.Realize(network).
func (p *Platform) Realize(n *netsim.Network) error {
	for _, name := range p.Nodes() {
		node := p.nodes[name]
		if node.Router {
			continue // routers are not endpoints
		}
		if _, err := n.AddHost(name, node.Speed); err != nil {
			return err
		}
	}
	for _, e := range p.edges {
		if _, err := n.AddLink(e.LinkName, e.Bandwidth, e.Latency); err != nil {
			return err
		}
	}
	return nil
}

// boundPlatform implements netsim.RouteProvider: it resolves the link
// sequence between two hosts and sums path latency. Link handles are
// looked up by name in the realized network.
type boundPlatform struct {
	p   *Platform
	net *netsim.Network
}

func (bp *boundPlatform) Route(src, dst string) (*netsim.Route, error) {
	path, err := bp.p.Path(src, dst)
	if err != nil {
		return nil, err
	}
	r := &netsim.Route{}
	for _, ei := range path {
		e := bp.p.edges[ei]
		l := bp.net.Link(e.LinkName)
		if l == nil {
			return nil, fmt.Errorf("platform: link %q not realized in network", e.LinkName)
		}
		r.Links = append(r.Links, l)
		r.Latency += e.Latency
	}
	return r, nil
}

// NewNetwork creates a netsim.Network on the given kernel, wires this
// platform in as the route provider, and realizes every host and link.
func (p *Platform) NewNetwork(sim *des.Simulation) (*netsim.Network, error) {
	bp := &boundPlatform{p: p}
	net := netsim.New(sim, bp)
	bp.net = net
	if err := p.Realize(net); err != nil {
		return nil, err
	}
	return net, nil
}
