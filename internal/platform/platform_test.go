package platform

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/des"
	"repro/internal/proximity"
)

func ip(s string) proximity.Addr { return proximity.MustParseAddr(s) }

func TestAddNodesAndEdges(t *testing.T) {
	p := New("t")
	if err := p.AddHost("h1", ip("10.0.0.1"), 1e9); err != nil {
		t.Fatal(err)
	}
	if err := p.AddRouter("r1"); err != nil {
		t.Fatal(err)
	}
	if err := p.AddHost("h1", ip("10.0.0.2"), 1e9); err == nil {
		t.Fatal("duplicate node accepted")
	}
	if err := p.AddHost("bad", ip("10.0.0.3"), 0); err == nil {
		t.Fatal("zero-speed host accepted")
	}
	if err := p.Connect("h1", "r1", "l1", 1e6, 0.001); err != nil {
		t.Fatal(err)
	}
	if err := p.Connect("h1", "r1", "l1", 1e6, 0.001); err == nil {
		t.Fatal("duplicate link name accepted")
	}
	if err := p.Connect("h1", "nope", "l2", 1e6, 0.001); err == nil {
		t.Fatal("unknown endpoint accepted")
	}
	if err := p.Connect("h1", "r1", "l3", -1, 0.001); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}

func TestPathLine(t *testing.T) {
	// h1 - r1 - r2 - h2
	p := New("line")
	p.AddHost("h1", ip("10.0.0.1"), 1e9)
	p.AddHost("h2", ip("10.0.0.2"), 1e9)
	p.AddRouter("r1")
	p.AddRouter("r2")
	p.Connect("h1", "r1", "a", 1e6, 0.001)
	p.Connect("r1", "r2", "b", 1e6, 0.001)
	p.Connect("r2", "h2", "c", 1e6, 0.001)
	path, err := p.Path("h1", "h2")
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, ei := range path {
		names = append(names, p.edges[ei].LinkName)
	}
	if strings.Join(names, ",") != "a,b,c" {
		t.Fatalf("path = %v", names)
	}
}

func TestPathPrefersFewerHops(t *testing.T) {
	// Two routes h1->h2: direct slow link (1 hop) vs two fast links.
	p := New("choice")
	p.AddHost("h1", ip("10.0.0.1"), 1e9)
	p.AddHost("h2", ip("10.0.0.2"), 1e9)
	p.AddRouter("r")
	p.Connect("h1", "h2", "direct", 1e3, 0.5)
	p.Connect("h1", "r", "f1", 1e9, 0.001)
	p.Connect("r", "h2", "f2", 1e9, 0.001)
	path, _ := p.Path("h1", "h2")
	if len(path) != 1 || p.edges[path[0]].LinkName != "direct" {
		t.Fatalf("expected 1-hop direct route, got %d hops", len(path))
	}
}

func TestPathLatencyTieBreak(t *testing.T) {
	// Same hop count, different latency: pick the lower-latency route.
	p := New("tie")
	p.AddHost("h1", ip("10.0.0.1"), 1e9)
	p.AddHost("h2", ip("10.0.0.2"), 1e9)
	p.AddRouter("ra")
	p.AddRouter("rb")
	p.Connect("h1", "ra", "slow1", 1e9, 0.5)
	p.Connect("ra", "h2", "slow2", 1e9, 0.5)
	p.Connect("h1", "rb", "fast1", 1e9, 0.001)
	p.Connect("rb", "h2", "fast2", 1e9, 0.001)
	path, _ := p.Path("h1", "h2")
	if p.edges[path[0]].LinkName != "fast1" {
		t.Fatalf("expected low-latency route, got %v", p.edges[path[0]].LinkName)
	}
}

func TestPathSelf(t *testing.T) {
	p := New("self")
	p.AddHost("h", ip("10.0.0.1"), 1e9)
	path, err := p.Path("h", "h")
	if err != nil || len(path) != 0 {
		t.Fatalf("self path = %v, %v", path, err)
	}
}

func TestPathUnreachable(t *testing.T) {
	p := New("split")
	p.AddHost("h1", ip("10.0.0.1"), 1e9)
	p.AddHost("h2", ip("10.0.0.2"), 1e9)
	if _, err := p.Path("h1", "h2"); err == nil {
		t.Fatal("expected unreachable error")
	}
	if _, err := p.Path("h1", "ghost"); err == nil {
		t.Fatal("expected unknown-node error")
	}
}

func TestClusterGenerator(t *testing.T) {
	p, err := Cluster(8)
	if err != nil {
		t.Fatal(err)
	}
	hosts := p.Hosts()
	if len(hosts) != 8 {
		t.Fatalf("hosts = %d, want 8", len(hosts))
	}
	// Every pair must be routable.
	for _, a := range hosts {
		for _, b := range hosts {
			if a == b {
				continue
			}
			if _, err := p.Path(a, b); err != nil {
				t.Fatalf("no route %s -> %s: %v", a, b, err)
			}
		}
	}
	if _, err := Cluster(0); err == nil {
		t.Fatal("cluster(0) accepted")
	}
}

func TestClusterTransferTime(t *testing.T) {
	p, err := Cluster(4)
	if err != nil {
		t.Fatal(err)
	}
	sim := des.New()
	n, err := p.NewNetwork(sim)
	if err != nil {
		t.Fatal(err)
	}
	// node-0 (backbone side) to node-1 (fabric side): two 1 Gbps NIC
	// links + 10 Gbps trunk; bottleneck 1 Gbps, latency 3x100 µs.
	tt, err := n.TransferTime("node-000", "node-001", 125e6) // 1 Gbit payload
	if err != nil {
		t.Fatal(err)
	}
	want := 300e-6 + 125e6/(1*Gbps)
	if math.Abs(tt-want) > 1e-9 {
		t.Fatalf("transfer time = %v, want %v", tt, want)
	}
}

func TestDaisyGeneratorScale(t *testing.T) {
	p, err := Daisy(DefaultDaisy())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(p.Hosts()); got != 1024 {
		t.Fatalf("daisy hosts = %d, want 1024 (Fig. 8)", got)
	}
	// Spot-check routability across petals.
	if _, err := p.Path("node-0000", "node-1023"); err != nil {
		t.Fatal(err)
	}
}

func TestDaisyLastMileBandwidthRange(t *testing.T) {
	cfg := DefaultDaisy()
	p, err := Daisy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seen5, seen9 := false, false
	for _, e := range p.Edges() {
		if strings.HasPrefix(e.LinkName, "l3-") {
			if e.Bandwidth < cfg.LastMileMin-1 || e.Bandwidth > cfg.LastMileMax+1 {
				t.Fatalf("last-mile %s bandwidth %v outside [%v,%v]", e.LinkName, e.Bandwidth, cfg.LastMileMin, cfg.LastMileMax)
			}
			if e.Bandwidth < 6*Mbps {
				seen5 = true
			}
			if e.Bandwidth > 9*Mbps {
				seen9 = true
			}
		}
	}
	if !seen5 || !seen9 {
		t.Fatal("random last-mile bandwidths do not span the 5-10 Mbps range")
	}
}

func TestDaisyDeterministicSeed(t *testing.T) {
	a, _ := Daisy(DefaultDaisy())
	b, _ := Daisy(DefaultDaisy())
	ea, eb := a.Edges(), b.Edges()
	if len(ea) != len(eb) {
		t.Fatal("nondeterministic edge count")
	}
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("edge %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

func TestDaisyInvalidConfig(t *testing.T) {
	cfg := DefaultDaisy()
	cfg.PetalRouters = 0
	if _, err := Daisy(cfg); err == nil {
		t.Fatal("invalid config accepted")
	}
}

func TestLANGenerator(t *testing.T) {
	p, err := LAN(16)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hosts()) != 16 {
		t.Fatalf("hosts = %d", len(p.Hosts()))
	}
	sim := des.New()
	n, err := p.NewNetwork(sim)
	if err != nil {
		t.Fatal(err)
	}
	// Cross-switch path: drop + backbone + drop; bottleneck 100 Mbps.
	tt, err := n.TransferTime("node-0000", "node-0001", 12.5e6)
	if err != nil {
		t.Fatal(err)
	}
	want := 300e-6 + 200e-6 + 300e-6 + 12.5e6/(100*Mbps)
	if math.Abs(tt-want) > 1e-9 {
		t.Fatalf("transfer = %v, want %v", tt, want)
	}
	if _, err := LAN(0); err == nil {
		t.Fatal("LAN(0) accepted")
	}
}

func TestForKind(t *testing.T) {
	for _, k := range []Kind{KindCluster, KindDaisy, KindLAN} {
		p, err := ForKind(k, 4)
		if err != nil {
			t.Fatalf("%s: %v", k, err)
		}
		if len(p.Hosts()) < 4 {
			t.Fatalf("%s: only %d hosts", k, len(p.Hosts()))
		}
	}
	if _, err := ForKind("vax", 4); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	orig, err := Cluster(4)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.Write(&buf); err != nil {
		t.Fatal(err)
	}
	parsed, err := Parse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if parsed.Name != orig.Name {
		t.Fatalf("name %q != %q", parsed.Name, orig.Name)
	}
	if strings.Join(parsed.Nodes(), ",") != strings.Join(orig.Nodes(), ",") {
		t.Fatal("node sets differ")
	}
	if len(parsed.Edges()) != len(orig.Edges()) {
		t.Fatal("edge counts differ")
	}
	// Routing must agree.
	po, _ := orig.Path("node-000", "node-003")
	pp, _ := parsed.Path("node-000", "node-003")
	if len(po) != len(pp) {
		t.Fatalf("paths differ: %d vs %d hops", len(po), len(pp))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"",
		"host h 10.0.0.1 1e9",                   // before header
		"platform p\nhost h bad-ip 1e9",         // bad IP
		"platform p\nhost h 10.0.0.1 x",         // bad speed
		"platform p\nhost h",                    // arity
		"platform p\nrouter",                    // arity
		"platform p\nlink a b c 1 2",            // unknown nodes
		"platform p\nfrobnicate x",              // unknown directive
		"platform p\nplatform q",                // duplicate header
		"platform p\nrouter r\nlink r r l x 0",  // bad bandwidth
		"platform p\nrouter r\nlink r r l 1 xx", // bad latency
	}
	for _, c := range cases {
		if _, err := Parse(strings.NewReader(c)); err == nil {
			t.Errorf("Parse accepted %q", c)
		}
	}
}

func TestParseCommentsAndBlanks(t *testing.T) {
	in := "# a platform\nplatform demo\n\nhost h1 10.0.0.1 1e9\n# trailing comment\n"
	p, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Hosts()) != 1 {
		t.Fatal("comment parsing broke hosts")
	}
}

// Property: any cluster size in [1,64] yields a platform where all
// host pairs route, and the route crosses at most 3 links.
func TestPropertyClusterRoutes(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%64) + 1
		p, err := Cluster(n)
		if err != nil {
			return false
		}
		hosts := p.Hosts()
		for i := 0; i < len(hosts) && i < 6; i++ {
			for j := 0; j < len(hosts) && j < 6; j++ {
				if i == j {
					continue
				}
				path, err := p.Path(hosts[i], hosts[j])
				if err != nil || len(path) == 0 || len(path) > 3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

// Property: serialize -> parse -> serialize is a fixed point.
func TestPropertySerializeFixedPoint(t *testing.T) {
	f := func(raw uint8) bool {
		n := int(raw%16) + 1
		p, err := LAN(n)
		if err != nil {
			return false
		}
		var b1 bytes.Buffer
		if err := p.Write(&b1); err != nil {
			return false
		}
		q, err := Parse(bytes.NewReader(b1.Bytes()))
		if err != nil {
			return false
		}
		var b2 bytes.Buffer
		if err := q.Write(&b2); err != nil {
			return false
		}
		return b1.String() == b2.String()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkDaisyBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Daisy(DefaultDaisy()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkClusterRouting(b *testing.B) {
	p, _ := Cluster(32)
	hosts := p.Hosts()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		src := hosts[i%len(hosts)]
		dst := hosts[(i+7)%len(hosts)]
		if src != dst {
			if _, err := p.Path(src, dst); err != nil {
				b.Fatal(err)
			}
		}
	}
}
