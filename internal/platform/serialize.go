package platform

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"repro/internal/proximity"
)

// The text format is line-oriented, in the spirit of SimGrid platform
// files but trivially diffable:
//
//	platform <name>
//	host <name> <ip> <flops>
//	router <name>
//	link <a> <b> <linkname> <bandwidth B/s> <latency s>
//
// Comments start with '#'; blank lines are ignored.

// Write serializes the platform.
func (p *Platform) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "platform %s\n", p.Name)
	if p.Frontend != "" {
		fmt.Fprintf(bw, "frontend %s\n", p.Frontend)
	}
	for _, name := range p.Nodes() {
		n := p.nodes[name]
		if n.Router {
			fmt.Fprintf(bw, "router %s\n", n.Name)
		} else {
			fmt.Fprintf(bw, "host %s %s %g\n", n.Name, n.IP, n.Speed)
		}
	}
	edges := append([]Edge(nil), p.edges...)
	sort.Slice(edges, func(i, j int) bool { return edges[i].LinkName < edges[j].LinkName })
	for _, e := range edges {
		fmt.Fprintf(bw, "link %s %s %s %g %g\n", e.A, e.B, e.LinkName, e.Bandwidth, e.Latency)
	}
	return bw.Flush()
}

// Parse reads a platform from the text format produced by Write.
func Parse(r io.Reader) (*Platform, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	var p *Platform
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "platform":
			if len(fields) != 2 {
				return nil, fmt.Errorf("platform: line %d: want 'platform <name>'", lineNo)
			}
			if p != nil {
				return nil, fmt.Errorf("platform: line %d: duplicate platform header", lineNo)
			}
			p = New(fields[1])
		case "host":
			if p == nil {
				return nil, fmt.Errorf("platform: line %d: host before platform header", lineNo)
			}
			if len(fields) != 4 {
				return nil, fmt.Errorf("platform: line %d: want 'host <name> <ip> <flops>'", lineNo)
			}
			ip, err := proximity.ParseAddr(fields[2])
			if err != nil {
				return nil, fmt.Errorf("platform: line %d: %v", lineNo, err)
			}
			speed, err := strconv.ParseFloat(fields[3], 64)
			if err != nil {
				return nil, fmt.Errorf("platform: line %d: bad speed: %v", lineNo, err)
			}
			if err := p.AddHost(fields[1], ip, speed); err != nil {
				return nil, fmt.Errorf("platform: line %d: %v", lineNo, err)
			}
		case "frontend":
			if p == nil || len(fields) != 2 {
				return nil, fmt.Errorf("platform: line %d: want 'frontend <name>' after header", lineNo)
			}
			p.Frontend = fields[1]
		case "router":
			if p == nil {
				return nil, fmt.Errorf("platform: line %d: router before platform header", lineNo)
			}
			if len(fields) != 2 {
				return nil, fmt.Errorf("platform: line %d: want 'router <name>'", lineNo)
			}
			if err := p.AddRouter(fields[1]); err != nil {
				return nil, fmt.Errorf("platform: line %d: %v", lineNo, err)
			}
		case "link":
			if p == nil {
				return nil, fmt.Errorf("platform: line %d: link before platform header", lineNo)
			}
			if len(fields) != 6 {
				return nil, fmt.Errorf("platform: line %d: want 'link <a> <b> <name> <bw> <lat>'", lineNo)
			}
			bw, err := strconv.ParseFloat(fields[4], 64)
			if err != nil {
				return nil, fmt.Errorf("platform: line %d: bad bandwidth: %v", lineNo, err)
			}
			lat, err := strconv.ParseFloat(fields[5], 64)
			if err != nil {
				return nil, fmt.Errorf("platform: line %d: bad latency: %v", lineNo, err)
			}
			if err := p.Connect(fields[1], fields[2], fields[3], bw, lat); err != nil {
				return nil, fmt.Errorf("platform: line %d: %v", lineNo, err)
			}
		default:
			return nil, fmt.Errorf("platform: line %d: unknown directive %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if p == nil {
		return nil, fmt.Errorf("platform: empty input")
	}
	return p, nil
}
