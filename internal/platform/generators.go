package platform

import (
	"fmt"
	"math/rand"

	"repro/internal/proximity"
)

// Experiment-wide physical constants. Bandwidths are bytes/s (the
// paper quotes bits/s: 1 Gbps = 125e6 B/s).
const (
	Gbps = 125e6 // bytes/s per gigabit
	Mbps = 125e3 // bytes/s per megabit

	// NodeSpeed is the calibrated compute speed of one Bordeplage-class
	// node (Intel Xeon EM64T 3 GHz in the paper) in abstract flop/s.
	// All three platforms use identical machines (paper §IV-A.3), only
	// networks differ.
	NodeSpeed = 3e9
)

// Cluster builds the Stage-1 Bordeplage-like cluster: n nodes with
// 1 Gbps / 100 µs NICs attached to a 10 Gbps / 100 µs backbone
// (paper §IV-A.4).
func Cluster(n int) (*Platform, error) {
	if n < 1 {
		return nil, fmt.Errorf("platform: cluster needs >= 1 node, got %d", n)
	}
	p := New(fmt.Sprintf("cluster-%d", n))
	if err := p.AddRouter("backbone"); err != nil {
		return nil, err
	}
	// The backbone is modelled as a router; node NIC links carry the
	// 1 Gbps / 100 µs characteristics and a shared backbone link pair
	// models the 10 Gbps fabric. To keep intra-cluster paths symmetric
	// we attach all NICs to the backbone router directly and add one
	// "fabric" self-capacity link crossed by every path: netsim routes
	// are link lists, so we insert the fabric link between NIC links.
	if err := p.AddRouter("fabric"); err != nil {
		return nil, err
	}
	if err := p.Connect("backbone", "fabric", "fabric-trunk", 10*Gbps, 100e-6); err != nil {
		return nil, err
	}
	if err := addFrontend(p, "backbone"); err != nil {
		return nil, err
	}
	base := proximity.MustParseAddr("172.16.0.0")
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("node-%03d", i)
		ip := proximity.Addr(uint32(base) + uint32(i) + 1)
		if err := p.AddHost(name, ip, NodeSpeed); err != nil {
			return nil, err
		}
		// Alternate sides of the trunk so node<->node paths traverse the
		// 10 Gbps fabric exactly when crossing halves, like a two-level
		// cluster tree.
		attach := "backbone"
		if i%2 == 1 {
			attach = "fabric"
		}
		link := fmt.Sprintf("nic-%d", i)
		if err := p.Connect(name, attach, link, 1*Gbps, 100e-6); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// DaisyConfig parametrizes the Stage-2A topology (paper Fig. 8).
type DaisyConfig struct {
	CentralRouters  int     // "5 central routers just for connecting petals"
	PetalRouters    int     // routers per petal (10)
	DSLAMsPerRouter int     // 4
	NodesPerDSLAM   int     // 5 (one DSLAM exceptionally carries 5+24)
	ExtraNodes      int     // 24 extra nodes on one DSLAM to reach 1024
	CentralRing     float64 // l1: 100 Gbps
	PetalLink       float64 // l2: 10 Gbps (router-router and DSLAM-router)
	LastMileMin     float64 // l3 lower bound: 5 Mbps
	LastMileMax     float64 // l3 upper bound: 10 Mbps
	Seed            int64   // last-mile bandwidth assignment seed
}

// DefaultDaisy returns the paper's exact Fig. 8 configuration:
// 5 central routers, 5 petals of 10 routers, 4 DSLAMs per petal router,
// 5 nodes per DSLAM plus one exceptional DSLAM with 24 extra nodes,
// for a total of 5*10*4*5 + 24 = 1024 nodes.
func DefaultDaisy() DaisyConfig {
	return DaisyConfig{
		CentralRouters:  5,
		PetalRouters:    10,
		DSLAMsPerRouter: 4,
		NodesPerDSLAM:   5,
		ExtraNodes:      24,
		CentralRing:     100 * Gbps,
		PetalLink:       10 * Gbps,
		LastMileMin:     5 * Mbps,
		LastMileMax:     10 * Mbps,
		Seed:            42,
	}
}

// Daisy builds the Stage-2A xDSL platform. Node last-mile links draw a
// bandwidth uniformly from [LastMileMin, LastMileMax] using the seeded
// generator, matching "5 to 10 Mbps, value randomly assigned".
func Daisy(cfg DaisyConfig) (*Platform, error) {
	if cfg.CentralRouters < 1 || cfg.PetalRouters < 1 || cfg.DSLAMsPerRouter < 1 || cfg.NodesPerDSLAM < 1 {
		return nil, fmt.Errorf("platform: invalid daisy config %+v", cfg)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	p := New("daisy-xdsl")

	// Central ring (l1 @ 100 Gbps).
	for i := 0; i < cfg.CentralRouters; i++ {
		if err := p.AddRouter(fmt.Sprintf("core-%d", i)); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.CentralRouters; i++ {
		j := (i + 1) % cfg.CentralRouters
		if cfg.CentralRouters == 1 {
			break
		}
		if cfg.CentralRouters == 2 && i == 1 {
			break // avoid a duplicate edge on a 2-ring
		}
		name := fmt.Sprintf("l1-%d", i)
		if err := p.Connect(fmt.Sprintf("core-%d", i), fmt.Sprintf("core-%d", j), name, cfg.CentralRing, 1e-3); err != nil {
			return nil, err
		}
	}

	if err := addFrontend(p, "core-0"); err != nil {
		return nil, err
	}
	node := 0
	extraLeft := cfg.ExtraNodes
	base := proximity.MustParseAddr("82.64.0.0")
	addNode := func(dslam string, petal int) error {
		name := fmt.Sprintf("node-%04d", node)
		// IPs cluster by petal in /19 blocks so IP proximity correlates
		// with physical proximity, as ISPs allocate regionally.
		ip := proximity.Addr(uint32(base) + uint32(petal)<<13 + uint32(node)&0x1FFF + 1)
		if err := p.AddHost(name, ip, NodeSpeed); err != nil {
			return err
		}
		bw := cfg.LastMileMin + rng.Float64()*(cfg.LastMileMax-cfg.LastMileMin)
		// xDSL last-mile latency ~ 8 ms (fast-path DSL).
		link := fmt.Sprintf("l3-%d", node)
		node++
		return p.Connect(name, dslam, link, bw, 8e-3)
	}

	// Petals: each hangs off one central router; petal routers chain in
	// a line (l2 @ 10 Gbps), each carrying DSLAMs (also l2).
	for petal := 0; petal < cfg.CentralRouters; petal++ {
		prev := fmt.Sprintf("core-%d", petal)
		for r := 0; r < cfg.PetalRouters; r++ {
			router := fmt.Sprintf("petal-%d-r%d", petal, r)
			if err := p.AddRouter(router); err != nil {
				return nil, err
			}
			link := fmt.Sprintf("l2-%d-%d", petal, r)
			if err := p.Connect(prev, router, link, cfg.PetalLink, 2e-3); err != nil {
				return nil, err
			}
			prev = router
			for d := 0; d < cfg.DSLAMsPerRouter; d++ {
				dslam := fmt.Sprintf("dslam-%d-%d-%d", petal, r, d)
				if err := p.AddRouter(dslam); err != nil {
					return nil, err
				}
				dl := fmt.Sprintf("l2d-%d-%d-%d", petal, r, d)
				if err := p.Connect(router, dslam, dl, cfg.PetalLink, 2e-3); err != nil {
					return nil, err
				}
				count := cfg.NodesPerDSLAM
				if extraLeft > 0 && petal == 0 && r == 0 && d == 0 {
					count += extraLeft // the exceptional 5+24 DSLAM
					extraLeft = 0
				}
				for k := 0; k < count; k++ {
					if err := addNode(dslam, petal); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return p, nil
}

// LAN builds the Stage-2B platform: n nodes, each connected at
// 100 Mbps to a 1 Gbps backbone switch (paper §IV-A.4 Stage-2B).
func LAN(n int) (*Platform, error) {
	if n < 1 {
		return nil, fmt.Errorf("platform: LAN needs >= 1 node, got %d", n)
	}
	p := New(fmt.Sprintf("lan-%d", n))
	if err := p.AddRouter("switch-a"); err != nil {
		return nil, err
	}
	if err := p.AddRouter("switch-b"); err != nil {
		return nil, err
	}
	// The 1 Gbps backbone joins two access switches; every node-node
	// path crosses it, so backbone contention is modelled.
	if err := p.Connect("switch-a", "switch-b", "backbone", 1*Gbps, 200e-6); err != nil {
		return nil, err
	}
	if err := addFrontend(p, "switch-a"); err != nil {
		return nil, err
	}
	base := proximity.MustParseAddr("10.10.0.0")
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("node-%04d", i)
		ip := proximity.Addr(uint32(base) + uint32(i) + 1)
		if err := p.AddHost(name, ip, NodeSpeed); err != nil {
			return nil, err
		}
		attach := "switch-a"
		if i%2 == 1 {
			attach = "switch-b"
		}
		link := fmt.Sprintf("drop-%d", i)
		if err := p.Connect(name, attach, link, 100*Mbps, 300e-6); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// addFrontend attaches the submitter host to the given attachment
// point over a 1 Gbps link. The frontend models the scientist's
// well-connected machine that submits tasks and never computes.
func addFrontend(p *Platform, attach string) error {
	ip := proximity.MustParseAddr("192.168.100.1")
	if err := p.AddHost("frontend", ip, NodeSpeed); err != nil {
		return err
	}
	if err := p.Connect("frontend", attach, "frontend-uplink", 1*Gbps, 200e-6); err != nil {
		return err
	}
	p.Frontend = "frontend"
	return nil
}

// Kind selects one of the three evaluation platforms by name.
type Kind string

// Platform kinds used across experiments and CLIs.
const (
	KindCluster Kind = "grid5000"
	KindDaisy   Kind = "xdsl"
	KindLAN     Kind = "lan"
)

// ForKind builds the platform of the given kind sized for n working
// peers. The Daisy topology is always built at full Fig. 8 scale
// (1024 nodes) and experiments use its first n nodes, mirroring the
// paper ("both networks connect 2^10 nodes, out of which we use, in
// turn, 2^1..2^5").
func ForKind(kind Kind, n int) (*Platform, error) {
	switch kind {
	case KindCluster:
		return Cluster(n)
	case KindDaisy:
		return Daisy(DefaultDaisy())
	case KindLAN:
		// Paper: the LAN also connects 2^10 nodes; build all of them so
		// backbone contention is realistic, but cap for tractability.
		size := 1024
		if n > size {
			size = n
		}
		return LAN(size)
	default:
		return nil, fmt.Errorf("platform: unknown kind %q", kind)
	}
}

// SizeKey reports which peer counts share a ForKind graph: two calls
// ForKind(kind, a) and ForKind(kind, b) build identical platforms iff
// SizeKey(kind, a) == SizeKey(kind, b). Callers caching platforms
// (e.g. sweeps) key on it; it lives here so the sharing policy cannot
// drift from the construction policy above.
func SizeKey(kind Kind, n int) int {
	switch kind {
	case KindDaisy:
		return 0 // always full Fig. 8 scale
	case KindLAN:
		if n <= 1024 {
			return 0
		}
	}
	return n
}
