package lint_test

import (
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// TestRepoClean builds cmd/dperfvet and runs it over the whole module
// through the real `go vet -vettool` protocol: the repository must be
// clean under its own determinism suite. This is both the acceptance
// gate and an end-to-end test of the unitchecker protocol (tool
// identity, -flags, per-package vet.cfg analysis over export data).
func TestRepoClean(t *testing.T) {
	if testing.Short() {
		t.Skip("builds and vets the whole module")
	}
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not found: %v", err)
	}
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}

	bin := filepath.Join(t.TempDir(), "dperfvet")
	build := exec.Command(goTool, "build", "-o", bin, "./cmd/dperfvet")
	build.Dir = root
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building dperfvet: %v\n%s", err, out)
	}

	vet := exec.Command(goTool, "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if out, err := vet.CombinedOutput(); err != nil {
		t.Errorf("go vet -vettool=dperfvet ./... reported findings: %v\n%s", err, out)
	}
}
