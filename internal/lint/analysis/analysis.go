// Package analysis is a minimal, dependency-free mirror of the
// golang.org/x/tools/go/analysis core types, specialized for the
// dperfvet suite. The module is deliberately self-contained (no
// external dependencies), so the handful of framework concepts the
// analyzers need — an Analyzer with a Run function over a type-checked
// Pass, Diagnostic reporting, and the //dperfvet:* suppression
// annotations — live here instead of being imported.
//
// Analyzers written against this package are driven two ways:
//
//   - by internal/lint/unitchecker, which implements the `go vet
//     -vettool` config protocol, so `go vet -vettool=$(dperfvet)` runs
//     the suite over export data exactly like a standard vet pass;
//   - by internal/lint/linttest, an analysistest-style harness that
//     loads testdata/src fixture packages from source and checks
//     diagnostics against `// want` comments.
//
// # Annotations
//
// Findings are suppressed with a comment on the flagged line or on the
// line directly above it:
//
//	//dperfvet:ordered <reason>          (maporder only)
//	//dperfvet:allow <analyzer> <reason> (any analyzer)
//
// The reason is mandatory: an annotation without one keeps the
// suppression but earns its own diagnostic, so a bare escape hatch can
// never land silently.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// ModulePath is the import-path prefix of this repository's module.
// Analyzer package scopes are expressed as full package paths under
// this prefix ("repro/internal/des", ...), which both the unitchecker
// (export-data paths) and linttest fixtures (testdata/src layout)
// produce verbatim.
const ModulePath = "repro"

// Analyzer describes one static check.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //dperfvet:allow annotations.
	Name string
	// Doc is a one-paragraph description of the invariant enforced.
	Doc string
	// Run applies the analyzer to one package.
	Run func(*Pass) error
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass holds one type-checked package and the reporting sink for one
// analyzer run.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Report    func(Diagnostic)

	annots map[*ast.File]map[int]*Annotation
}

// Reportf reports a formatted diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...interface{}) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// PackagePath returns the package path with any test-variant suffix
// stripped: `go vet` presents the test-augmented package
// "repro/internal/des [repro/internal/des.test]" with the bracketed ID
// appended, and scope checks care only about the base path.
func (p *Pass) PackagePath() string {
	path := p.Pkg.Path()
	if i := strings.Index(path, " ["); i >= 0 {
		path = path[:i]
	}
	return path
}

// InPackages reports whether the pass's package is one of paths.
func (p *Pass) InPackages(paths map[string]bool) bool {
	return paths[p.PackagePath()]
}

// NonTestFiles returns the pass's files excluding _test.go files.
// The determinism invariants bind simulation code, not its tests
// (which freely use goroutines, wall-clock timeouts and so on), and
// `go vet` hands analyzers test files too.
func (p *Pass) NonTestFiles() []*ast.File {
	out := make([]*ast.File, 0, len(p.Files))
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// Annotation is one parsed //dperfvet:* comment.
type Annotation struct {
	// Name is the directive: "ordered" or "allow".
	Name string
	// Analyzer is the analyzer named by an allow annotation ("" for
	// ordered, which is maporder-specific by construction).
	Analyzer string
	// Reason is the free-text justification; empty is an error.
	Reason string
	Pos    token.Pos
}

const annotPrefix = "//dperfvet:"

// parseAnnotations indexes a file's //dperfvet:* comments by line.
func parseAnnotations(fset *token.FileSet, f *ast.File) map[int]*Annotation {
	m := make(map[int]*Annotation)
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, annotPrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, annotPrefix)
			name, args, _ := strings.Cut(rest, " ")
			a := &Annotation{Name: name, Pos: c.Pos()}
			args = strings.TrimSpace(args)
			if name == "allow" {
				a.Analyzer, a.Reason, _ = strings.Cut(args, " ")
				a.Reason = strings.TrimSpace(a.Reason)
			} else {
				a.Reason = args
			}
			m[fset.Position(c.Pos()).Line] = a
		}
	}
	return m
}

// annotationNear returns the annotation covering line (same line or
// the line directly above), if any.
func (p *Pass) annotationNear(f *ast.File, line int) *Annotation {
	if p.annots == nil {
		p.annots = make(map[*ast.File]map[int]*Annotation)
	}
	m, ok := p.annots[f]
	if !ok {
		m = parseAnnotations(p.Fset, f)
		p.annots[f] = m
	}
	if a := m[line]; a != nil {
		return a
	}
	return m[line-1]
}

// Exempted reports whether the finding at pos (in file f) is
// suppressed for the pass's analyzer: by //dperfvet:allow <analyzer>,
// or — when ordered is set — by //dperfvet:ordered. A matching
// annotation with no reason still suppresses but is itself reported,
// so the tree can never accumulate unexplained escapes.
func (p *Pass) Exempted(f *ast.File, pos token.Pos, ordered bool) bool {
	line := p.Fset.Position(pos).Line
	a := p.annotationNear(f, line)
	if a == nil {
		return false
	}
	match := a.Name == "allow" && a.Analyzer == p.Analyzer.Name
	if ordered && a.Name == "ordered" {
		match = true
	}
	if !match {
		return false
	}
	if a.Reason == "" {
		p.Reportf(pos, "dperfvet:%s annotation needs a reason", a.Name)
	}
	return true
}

// StmtLists invokes fn on every statement list under root: block
// bodies, switch case clauses and select comm clauses. Analyzers that
// need a statement's following siblings (e.g. maporder's sorted-keys
// idiom) walk these instead of single nodes.
func StmtLists(root ast.Node, fn func([]ast.Stmt)) {
	ast.Inspect(root, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.BlockStmt:
			fn(n.List)
		case *ast.CaseClause:
			fn(n.Body)
		case *ast.CommClause:
			fn(n.Body)
		}
		return true
	})
}

// Unparen strips parentheses.
func Unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

// RootIdent returns the leftmost identifier of an lvalue-ish
// expression (x, x.f, x[i], *x, ...), or nil.
func RootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.SliceExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// PkgFunc resolves a call to a package-level function and returns the
// function object and its package path, or ("", nil) when the callee
// is not a package-level function (methods, builtins, conversions,
// function-typed variables).
func PkgFunc(info *types.Info, call *ast.CallExpr) (path string, fn *types.Func) {
	switch f := Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		id, ok := Unparen(f.X).(*ast.Ident)
		if !ok {
			return "", nil
		}
		if _, ok := info.Uses[id].(*types.PkgName); !ok {
			return "", nil
		}
		fn, ok := info.Uses[f.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return "", nil
		}
		return fn.Pkg().Path(), fn
	case *ast.Ident:
		fn, ok := info.Uses[f].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
			return "", nil
		}
		return fn.Pkg().Path(), fn
	}
	return "", nil
}

// IsMapRange reports whether rs ranges over a map value.
func IsMapRange(info *types.Info, rs *ast.RangeStmt) bool {
	tv, ok := info.Types[rs.X]
	if !ok || tv.Type == nil {
		return false
	}
	_, isMap := tv.Type.Underlying().(*types.Map)
	return isMap
}

// IsFloat reports whether t's underlying type is a floating-point
// (or complex) type.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
