// Package linttest is an analysistest-style harness for the dperfvet
// analyzers, built on the standard library alone. Fixture packages
// live under the analyzer's testdata/src directory in import-path
// layout — testdata/src/repro/internal/des holds a fixture that
// type-checks as package path "repro/internal/des" — so repo-aware
// package scoping and cross-package references (fake repro/internal/
// replay, real sync/sort/...) work exactly as they do in the tree.
//
// Expected findings are declared with trailing comments on the
// offending line:
//
//	for k := range m { // want `range over map`
//
// Each backquoted (or double-quoted) string is a regexp that must
// match one diagnostic reported on that line; every diagnostic must be
// matched by exactly one want, and vice versa.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"repro/internal/lint/analysis"
)

// loader resolves fixture packages from a testdata/src tree and
// everything else (the standard library) from GOROOT source.
type loader struct {
	fset *token.FileSet
	root string // testdata/src
	std  types.Importer
	pkgs map[string]*pkg
}

type pkg struct {
	path  string
	files []*ast.File
	types *types.Package
	info  *types.Info
	err   error
}

func newLoader(root string) *loader {
	fset := token.NewFileSet()
	return &loader{
		fset: fset,
		root: root,
		std:  importer.ForCompiler(fset, "source", nil),
		pkgs: make(map[string]*pkg),
	}
}

// Import implements types.Importer over the fixture tree + GOROOT.
func (l *loader) Import(path string) (*types.Package, error) {
	if dir := filepath.Join(l.root, filepath.FromSlash(path)); isDir(dir) {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.types, nil
	}
	return l.std.Import(path)
}

func isDir(dir string) bool {
	st, err := os.Stat(dir)
	return err == nil && st.IsDir()
}

// load parses and type-checks the fixture package at import path path.
func (l *loader) load(path string) (*pkg, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, p.err
	}
	p := &pkg{path: path}
	l.pkgs[path] = p // pre-register: fixture import cycles fail in Import

	dir := filepath.Join(l.root, filepath.FromSlash(path))
	entries, err := os.ReadDir(dir)
	if err != nil {
		p.err = err
		return p, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		p.err = fmt.Errorf("linttest: no .go files in %s", dir)
		return p, p.err
	}
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			p.err = err
			return p, err
		}
		p.files = append(p.files, f)
	}
	p.info = &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	p.types, p.err = conf.Check(path, l.fset, p.files, p.info)
	return p, p.err
}

// Run loads each fixture package under dir/src, applies the analyzer,
// and checks its diagnostics against the fixtures' want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPaths ...string) {
	t.Helper()
	root := filepath.Join(dir, "src")
	l := newLoader(root)
	for _, path := range pkgPaths {
		p, err := l.load(path)
		if err != nil {
			t.Errorf("loading fixture %s: %v", path, err)
			continue
		}
		var diags []analysis.Diagnostic
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      l.fset,
			Files:     p.files,
			Pkg:       p.types,
			TypesInfo: p.info,
			Report:    func(d analysis.Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			t.Errorf("%s: analyzer error on %s: %v", a.Name, path, err)
			continue
		}
		check(t, l.fset, p, diags)
	}
}

type key struct {
	file string
	line int
}

var wantRE = regexp.MustCompile("`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\"")

// check matches diagnostics against want comments, both keyed by
// (file, line).
func check(t *testing.T, fset *token.FileSet, p *pkg, diags []analysis.Diagnostic) {
	t.Helper()
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range p.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRE.FindAllStringSubmatch(text[len("want "):], -1) {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Errorf("%s: bad want pattern %q: %v", pos, pat, err)
						continue
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := -1
		for i, re := range wants[k] {
			if re != nil && re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			continue
		}
		wants[k][matched] = nil // consume
	}
	var keys []key
	for k := range wants {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, re := range wants[k] {
			if re != nil {
				t.Errorf("%s:%d: expected diagnostic matching %q, got none", k.file, k.line, re)
			}
		}
	}
}
