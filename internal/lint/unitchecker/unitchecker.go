// Package unitchecker implements the `go vet -vettool` command-line
// protocol for the dperfvet suite, on the standard library alone (the
// x/tools unitchecker is the reference implementation of the same
// unpublished protocol). The driver (cmd/go) invokes the tool three
// ways:
//
//	tool -V=full        print a tool identity line for the build cache
//	tool -flags         print the tool's flags as JSON (we have none)
//	tool <file>.cfg     analyze one package described by the config
//
// The config names the package's source files and maps every import
// to the export data cmd/go already compiled, so type-checking here is
// a cheap gc-export-data import (go/importer with a lookup function),
// never a source re-load.
package unitchecker

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"runtime"
	"sort"
	"strings"

	"repro/internal/lint/analysis"
)

// Config is cmd/go's vet configuration (work.vetConfig). Fields we do
// not consume are listed for fidelity to the protocol.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ModulePath                string
	ModuleVersion             string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// Main dispatches on the protocol entry points and returns the process
// exit code: 0 clean, 1 tool/typecheck error, 2 diagnostics reported.
func Main(progname string, args []string, analyzers []*analysis.Analyzer) int {
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V="):
			printVersion(progname)
			return 0
		case args[0] == "-flags":
			fmt.Println("[]")
			return 0
		case strings.HasSuffix(args[0], ".cfg"):
			return runUnit(args[0], analyzers)
		}
	}
	fmt.Fprintf(os.Stderr, "usage: %s -V=full | -flags | <file>.cfg | <packages>\n", progname)
	return 1
}

// printVersion emits the identity line cmd/go's toolID parser expects:
// at least three fields, the second "version", and for "devel" a
// trailing buildID derived from the tool binary's content so cache
// entries invalidate when the suite changes.
func printVersion(progname string) {
	id := "unknown"
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			h := sha256.New()
			if _, err := io.Copy(h, f); err == nil {
				id = fmt.Sprintf("%x", h.Sum(nil)[:16])
			}
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%s\n", progname, id)
}

func runUnit(cfgFile string, analyzers []*analysis.Analyzer) int {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dperfvet: reading config: %v\n", err)
		return 1
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dperfvet: parsing config %s: %v\n", cfgFile, err)
		return 1
	}
	// The driver caches our (empty) facts output keyed by tool identity.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte{}, 0666); err != nil {
			fmt.Fprintf(os.Stderr, "dperfvet: writing vetx output: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: the suite keeps no cross-package facts
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			fmt.Fprintf(os.Stderr, "dperfvet: %v\n", err)
			return 1
		}
		files = append(files, f)
	}

	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	tconf := types.Config{
		Importer:  importer.ForCompiler(fset, "gc", lookup),
		Sizes:     types.SizesFor(compiler, runtime.GOARCH),
		GoVersion: cfg.GoVersion,
	}
	pkg, err := tconf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "dperfvet: typechecking %s: %v\n", cfg.ImportPath, err)
		return 1
	}

	type posDiag struct {
		pos token.Position
		msg string
	}
	var diags []posDiag
	for _, a := range analyzers {
		pass := &analysis.Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			Report: func(d analysis.Diagnostic) {
				// Suffix the analyzer name: it is what a
				// //dperfvet:allow annotation must reference.
				msg := fmt.Sprintf("%s [dperfvet:%s]", d.Message, a.Name)
				diags = append(diags, posDiag{fset.Position(d.Pos), msg})
			},
		}
		if err := a.Run(pass); err != nil {
			fmt.Fprintf(os.Stderr, "dperfvet: %s on %s: %v\n", a.Name, cfg.ImportPath, err)
			return 1
		}
	}
	if len(diags) == 0 {
		return 0
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i].pos, diags[j].pos
		if a.Filename != b.Filename {
			return a.Filename < b.Filename
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Column != b.Column {
			return a.Column < b.Column
		}
		return diags[i].msg < diags[j].msg
	})
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", d.pos, d.msg)
	}
	return 2
}
