// Package overlay is outside the determinism-critical set: the same
// patterns produce no findings here.
package overlay

import "fmt"

func emit(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}

func sum(m map[string]float64) float64 {
	t := 0.0
	for _, v := range m {
		t += v
	}
	return t
}
