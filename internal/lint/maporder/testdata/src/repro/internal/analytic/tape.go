package analytic

import (
	"maps"
	"slices"
)

// Tape-compiler shapes: guard dedup and const pooling use maps keyed
// by operand registers; anything appended to the tape from a map range
// permutes the instruction stream run to run.

type tinstr struct {
	op   uint8
	a, b int32
}

// emitConsts appends the const pool to the tape in map iteration
// order — the compiled tape would differ byte for byte between runs.
func emitConsts(tape []tinstr, pool map[int32]float64) []tinstr {
	for reg := range pool { // want `range over map`
		tape = append(tape, tinstr{op: 0, a: reg})
	}
	return tape
}

// emitConstsSorted is the fix: a fixed register order makes the tape a
// pure function of the recorded evaluation.
func emitConstsSorted(tape []tinstr, pool map[int32]float64) []tinstr {
	for _, reg := range slices.Sorted(maps.Keys(pool)) {
		tape = append(tape, tinstr{op: 0, a: reg})
	}
	return tape
}

// guardSeen is the dedup-lookup shape: collecting keys for a sort
// right after is the recognized sorted-keys idiom.
func guardSeen(seen map[uint64]bool) []uint64 {
	keys := make([]uint64, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// countGuards is order-free: integer counting commutes exactly.
func countGuards(seen map[uint64]bool) int {
	n := 0
	//dperfvet:ordered integer count, order-free
	for range seen {
		n++
	}
	return n
}
