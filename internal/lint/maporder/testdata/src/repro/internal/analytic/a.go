package analytic

import "sort"

// flowRates models the evaluator's per-flow rate table.
type flowRates map[string]float64

// periodCost accumulates per-flow costs in map order.
func periodCost(rates flowRates) float64 {
	total := 0.0
	for _, r := range rates { // want `range over map accumulates floats`
		total += 1.0 / r
	}
	return total
}

// flowIDs collects certificate keys without sorting.
func flowIDs(certs map[string]int) []string {
	var out []string
	for id := range certs { // want `range over map appends per iteration`
		out = append(out, id)
	}
	return out
}

// sortedFlowIDs is the allowed idiom: collect, then sort, then use.
func sortedFlowIDs(certs map[string]int) []string {
	ids := make([]string, 0, len(certs))
	for id := range certs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

type queue struct{}

func (queue) Push(t float64, fn func()) {}

// seedEvents enqueues evaluator events in map order.
func seedEvents(q queue, deadlines map[string]float64) {
	for _, d := range deadlines { // want `range over map calls Push per iteration`
		q.Push(d, nil)
	}
}

// certHits is order-free: integer reductions commute exactly.
func certHits(served map[string]int) int {
	n := 0
	for _, v := range served {
		n += v
	}
	return n
}

// annotated is asserted order-free by its author.
func annotated(rates flowRates) float64 {
	t := 0.0
	//dperfvet:ordered all rates are identical, so every ordering sums identically
	for _, r := range rates {
		t += r
	}
	return t
}
