package des

import (
	"fmt"
	"sort"
)

// keys collects without sorting: iteration order leaks into the slice.
func keys(m map[string]int) []string {
	var out []string
	for k := range m { // want `range over map appends per iteration`
		out = append(out, k)
	}
	return out
}

// sortedKeys is the allowed idiom: collect, then sort.
func sortedKeys(m map[string]int) []string {
	var ks []string
	for k := range m {
		ks = append(ks, k)
	}
	sort.Strings(ks)
	return ks
}

// sum accumulates floats in map order.
func sum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `range over map accumulates floats`
		total += v
	}
	return total
}

// count is order-free: integer reductions commute exactly.
func count(m map[string]int) int {
	n := 0
	for range m {
		n++
	}
	return n
}

// emit prints in map order.
func emit(m map[string]int) {
	for k, v := range m { // want `range over map calls Println per iteration`
		fmt.Println(k, v)
	}
}

type kernel struct{}

func (kernel) Schedule(d float64, fn func()) {}

// schedules enqueues simulation events in map order.
func schedules(k kernel, delays map[string]float64) {
	for _, d := range delays { // want `range over map calls Schedule per iteration`
		k.Schedule(d, nil)
	}
}

// send forwards map elements over a channel in map order.
func send(m map[string]int, ch chan int) {
	for _, v := range m { // want `range over map sends on a channel per iteration`
		ch <- v
	}
}

// annotated is asserted order-free by its author.
func annotated(m map[string]float64) float64 {
	t := 0.0
	//dperfvet:ordered all values are exact powers of two, addition is exact
	for _, v := range m {
		t += v
	}
	return t
}

// bare annotations suppress but are themselves flagged.
func bareAnnotation(m map[string]float64) float64 {
	t := 0.0
	//dperfvet:ordered
	for _, v := range m { // want `annotation needs a reason`
		t += v
	}
	return t
}

// copyMap rebuilds a map: writes indexed by the key commute.
func copyMap(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
