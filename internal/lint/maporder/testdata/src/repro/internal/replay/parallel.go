package replay

import "sort"

// Fixtures for the cross-partition merge idiom: boundary records from
// several partitions must be merged in one deterministic order, never
// in map iteration order.

type flowStart struct {
	StartedAt float64
	Seq       uint64
}

type boundary struct {
	part int
	rec  flowStart
}

type kernel struct{}

func (kernel) ScheduleAt(t float64, fn func()) {}

// mergeFromMap drains per-partition mailboxes keyed by partition id:
// map order leaks straight into the injection sequence.
func mergeFromMap(mailboxes map[int][]flowStart) []boundary {
	var merged []boundary
	for part, recs := range mailboxes { // want `range over map appends per iteration`
		for _, rec := range recs {
			merged = append(merged, boundary{part: part, rec: rec})
		}
	}
	return merged
}

// injectFromMap schedules ghost flows in map order — the same bug one
// layer down.
func injectFromMap(k kernel, mailboxes map[int][]flowStart) {
	for _, recs := range mailboxes { // want `range over map calls ScheduleAt per iteration`
		for _, rec := range recs {
			k.ScheduleAt(rec.StartedAt, nil)
		}
	}
}

// mergeOrdered is the sanctioned idiom: partition mailboxes are a
// slice indexed by partition id, drained in index order, then sorted
// by (start time, origin partition, origin sequence) so the injection
// order is a pure function of the records.
func mergeOrdered(pending [][]flowStart) []boundary {
	var merged []boundary
	for part, recs := range pending {
		for _, rec := range recs {
			merged = append(merged, boundary{part: part, rec: rec})
		}
	}
	sort.Slice(merged, func(a, b int) bool {
		ra, rb := &merged[a], &merged[b]
		if ra.rec.StartedAt != rb.rec.StartedAt {
			return ra.rec.StartedAt < rb.rec.StartedAt
		}
		if ra.part != rb.part {
			return ra.part < rb.part
		}
		return ra.rec.Seq < rb.rec.Seq
	})
	return merged
}
