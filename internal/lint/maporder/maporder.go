// Package maporder flags `range` over a map in determinism-critical
// packages whenever the loop body is order-sensitive: it appends,
// accumulates floats, sends on a channel, emits output or schedules
// simulation events. Go randomizes map iteration order, so any such
// loop can change predictions, serialized artifacts or event order
// from run to run — the exact class of bug the repo's byte-identity
// acceptance bars exist to catch, surfaced at compile time instead.
//
// Two escapes are recognized:
//
//   - the sorted-keys idiom: a loop that only collects keys/values
//     into a slice that a following statement sorts (sort.* or
//     slices.Sort*) is allowed;
//   - an explicit //dperfvet:ordered <reason> annotation on (or right
//     above) the range statement, asserting the body is order-free.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// critical is the set of determinism-critical packages: the ones whose
// output feeds predictions, serialized artifacts or the event queue.
var critical = map[string]bool{
	analysis.ModulePath + "/internal/des":      true,
	analysis.ModulePath + "/internal/netsim":   true,
	analysis.ModulePath + "/internal/analytic": true,
	analysis.ModulePath + "/internal/replay":   true,
	analysis.ModulePath + "/internal/trace":    true,
	analysis.ModulePath + "/internal/interp":   true,
	analysis.ModulePath + "/dperf":             true,
	// The CLIs print reports and tables users diff between runs; a
	// map-ordered print loop makes byte-identical output a coin flip.
	analysis.ModulePath + "/cmd/dperf":       true,
	analysis.ModulePath + "/cmd/experiments": true,
}

// Analyzer is the maporder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flags order-sensitive range-over-map loops in determinism-critical packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !pass.InPackages(critical) {
		return nil
	}
	for _, f := range pass.NonTestFiles() {
		file := f
		analysis.StmtLists(file, func(list []ast.Stmt) {
			for i, s := range list {
				rs, ok := s.(*ast.RangeStmt)
				if !ok || !analysis.IsMapRange(pass.TypesInfo, rs) {
					continue
				}
				if pass.Exempted(file, rs.Pos(), true) {
					continue
				}
				verb := classify(pass.TypesInfo, rs.Body)
				if verb == "" {
					continue
				}
				if targets := collectOnly(pass.TypesInfo, rs); len(targets) > 0 && sortedAfter(pass.TypesInfo, list[i+1:], targets) {
					continue
				}
				pass.Reportf(rs.Pos(), "range over map %s in a determinism-critical package; iterate in sorted key order (e.g. slices.Sorted(maps.Keys(m))) or annotate //dperfvet:ordered <reason>", verb)
			}
		})
	}
	return nil
}

// emitPrefixes and emitNames match call names whose effects are
// ordered: output, event scheduling, process control.
var emitPrefixes = []string{"Schedule", "Write", "Print", "Fprint", "Emit", "Append"}

var emitNames = map[string]bool{
	"Spawn": true, "Signal": true, "Put": true, "Push": true,
	"Enqueue": true, "Send": true, "Post": true, "Record": true,
}

func emitName(name string) bool {
	if emitNames[name] {
		return true
	}
	for _, p := range emitPrefixes {
		if strings.HasPrefix(name, p) {
			return true
		}
	}
	return false
}

// classify reports why the loop body is order-sensitive, or "".
func classify(info *types.Info, body *ast.BlockStmt) string {
	verb := ""
	ast.Inspect(body, func(n ast.Node) bool {
		if verb != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := analysis.Unparen(n.Fun).(type) {
			case *ast.Ident:
				if fun.Name == "append" && isBuiltin(info, fun) {
					verb = "appends per iteration"
				} else if emitName(fun.Name) {
					verb = "calls " + fun.Name + " per iteration"
				}
			case *ast.SelectorExpr:
				if emitName(fun.Sel.Name) {
					verb = "calls " + fun.Sel.Name + " per iteration"
				}
			}
		case *ast.AssignStmt:
			if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
				return true
			}
			// Compound assignment: float accumulation is order-
			// sensitive in the last ulps; integer/string reductions
			// commute and are left to the sorted-output rules above.
			for _, lhs := range n.Lhs {
				if tv, ok := info.Types[lhs]; ok && tv.Type != nil && analysis.IsFloat(tv.Type) {
					verb = "accumulates floats"
				}
			}
		case *ast.SendStmt:
			verb = "sends on a channel per iteration"
		}
		return verb == ""
	})
	return verb
}

func isBuiltin(info *types.Info, id *ast.Ident) bool {
	_, ok := info.Uses[id].(*types.Builtin)
	return ok
}

// collectOnly reports the append targets of a loop whose body does
// nothing but `x = append(x, ...)`; nil means the body does more.
func collectOnly(info *types.Info, rs *ast.RangeStmt) map[types.Object]bool {
	targets := make(map[types.Object]bool)
	for _, s := range rs.Body.List {
		as, ok := s.(*ast.AssignStmt)
		if !ok || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return nil
		}
		call, ok := analysis.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return nil
		}
		fun, ok := analysis.Unparen(call.Fun).(*ast.Ident)
		if !ok || fun.Name != "append" || !isBuiltin(info, fun) {
			return nil
		}
		id, ok := analysis.Unparen(as.Lhs[0]).(*ast.Ident)
		if !ok {
			return nil
		}
		obj := info.Uses[id]
		if obj == nil {
			obj = info.Defs[id]
		}
		if obj == nil {
			return nil
		}
		targets[obj] = true
	}
	if len(targets) == 0 {
		return nil
	}
	return targets
}

// sortedAfter reports whether a following sibling statement sorts one
// of the collected slices via sort.* or slices.Sort*.
func sortedAfter(info *types.Info, rest []ast.Stmt, targets map[types.Object]bool) bool {
	for _, s := range rest {
		found := false
		ast.Inspect(s, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || found {
				return !found
			}
			path, fn := analysis.PkgFunc(info, call)
			if fn == nil {
				return true
			}
			isSort := path == "sort" || (path == "slices" && strings.HasPrefix(fn.Name(), "Sort"))
			if !isSort || len(call.Args) == 0 {
				return true
			}
			if id := analysis.RootIdent(call.Args[0]); id != nil && targets[info.Uses[id]] {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}
