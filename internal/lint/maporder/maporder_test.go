package maporder_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/maporder"
)

func TestMapOrder(t *testing.T) {
	linttest.Run(t, "testdata", maporder.Analyzer,
		"repro/internal/analytic",
		"repro/internal/des",
		"repro/internal/overlay",
		"repro/internal/replay",
	)
}
