// Package errclose requires the error results of Close and Flush to
// be checked wherever a swallowed error means a silently truncated
// artifact. The trace binary and template writers buffer aggressively
// (bufio all the way down), so the *only* place a disk-full or closed-
// pipe error can surface is the final Close/Flush — drop it and the
// reader later finds a container without its end marker.
//
// Flagged: a Close/Flush method call returning exactly one error,
// used as a bare statement or deferred, when either
//
//   - the receiver's type is declared in repro/internal/trace (the
//     binary/template writers and readers), anywhere in the module, or
//   - the receiver is a *bufio.Writer inside one of the packages that
//     serialize artifacts through it (internal/trace,
//     internal/platform, dperf).
//
// An explicit `_ = w.Close()` is a visible, deliberate discard (the
// error-path cleanup idiom) and is not flagged. A deliberate ignore
// that must stay a bare call carries //dperfvet:allow errclose
// <reason>.
package errclose

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// bufioScope is where an unchecked (*bufio.Writer).Flush silently
// truncates a serialized artifact.
var bufioScope = map[string]bool{
	analysis.ModulePath + "/internal/trace":    true,
	analysis.ModulePath + "/internal/platform": true,
	analysis.ModulePath + "/dperf":             true,
}

// Analyzer is the errclose analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "errclose",
	Doc:  "requires checked errors on Close/Flush of trace writers (a swallowed error truncates the container)",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	path := pass.PackagePath()
	if path != analysis.ModulePath && !strings.HasPrefix(path, analysis.ModulePath+"/") {
		return nil
	}
	for _, f := range pass.NonTestFiles() {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			var call *ast.CallExpr
			switch n := n.(type) {
			case *ast.ExprStmt:
				call, _ = analysis.Unparen(n.X).(*ast.CallExpr)
			case *ast.DeferStmt:
				call = n.Call
			default:
				return true
			}
			if call == nil {
				return true
			}
			if recv, name := flushClose(pass, call); recv != "" {
				if !pass.Exempted(file, call.Pos(), false) {
					pass.Reportf(call.Pos(), "unchecked error from %s.%s; a swallowed write error silently truncates the container", recv, name)
				}
			}
			return true
		})
	}
	return nil
}

// flushClose reports the receiver type name when call is an in-scope
// Close/Flush method call returning exactly one error.
func flushClose(pass *analysis.Pass, call *ast.CallExpr) (recv, name string) {
	sel, ok := analysis.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	name = sel.Sel.Name
	if name != "Close" && name != "Flush" {
		return "", ""
	}
	fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	if !ok {
		return "", ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || sig.Results().Len() != 1 {
		return "", ""
	}
	if named, ok := sig.Results().At(0).Type().(*types.Named); !ok || named.Obj().Name() != "error" || named.Obj().Pkg() != nil {
		return "", ""
	}
	rt := sig.Recv().Type()
	if p, ok := rt.(*types.Pointer); ok {
		rt = p.Elem()
	}
	named, ok := rt.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return "", ""
	}
	pkg := named.Obj().Pkg().Path()
	switch {
	case pkg == analysis.ModulePath+"/internal/trace":
		return "trace." + named.Obj().Name(), name
	case pkg == "bufio" && named.Obj().Name() == "Writer" && pass.InPackages(bufioScope):
		return "bufio.Writer", name
	}
	return "", ""
}
