package errclose_test

import (
	"testing"

	"repro/internal/lint/errclose"
	"repro/internal/lint/linttest"
)

func TestErrClose(t *testing.T) {
	linttest.Run(t, "testdata", errclose.Analyzer,
		"repro/dperf",
		"repro/internal/overlay",
	)
}
