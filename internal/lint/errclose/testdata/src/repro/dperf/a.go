package dperf

import (
	"bufio"
	"io"
	"os"

	"repro/internal/trace"
)

func unchecked(w *trace.Writer, tw *trace.TemplateWriter, bw *bufio.Writer) {
	w.Close()        // want `unchecked error from trace.Writer.Close`
	w.Flush()        // want `unchecked error from trace.Writer.Flush`
	defer w.Close()  // want `unchecked error from trace.Writer.Close`
	tw.Close()       // want `unchecked error from trace.TemplateWriter.Close`
	bw.Flush()       // want `unchecked error from bufio.Writer.Flush`
	defer bw.Flush() // want `unchecked error from bufio.Writer.Flush`
}

func checked(w *trace.Writer, bw *bufio.Writer) error {
	if err := w.Flush(); err != nil {
		return err
	}
	// An explicit blank assignment is a visible, deliberate discard.
	_ = w.Close()
	//dperfvet:allow errclose best-effort teardown after an earlier error
	w.Close()
	if err := bw.Flush(); err != nil {
		return err
	}
	return w.Close()
}

// Non-trace receivers are out of scope even when the error result is
// dropped; errcheck-style totality is not this analyzer's job.
func outOfScope(f *os.File, c io.Closer) {
	f.Close()
	c.Close()
	w := bufio.NewWriter(f)
	w.Reset(f)
}
