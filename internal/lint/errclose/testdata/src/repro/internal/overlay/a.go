// Package overlay is outside the bufio serialization scope: an
// unchecked bufio flush here is not a trace-container hazard.
package overlay

import "bufio"

func flush(bw *bufio.Writer) {
	bw.Flush()
}
