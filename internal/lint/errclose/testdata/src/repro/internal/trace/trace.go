// Package trace is a fixture stand-in for the real
// repro/internal/trace writers.
package trace

type Writer struct{ closed bool }

func (w *Writer) WriteOp(op int) error { return nil }
func (w *Writer) Close() error         { return nil }
func (w *Writer) Flush() error         { return nil }

type TemplateWriter struct{}

func (w *TemplateWriter) Close() error { return nil }

// Reset returns nothing: not an error-bearing close.
func (w *Writer) Reset() {}
