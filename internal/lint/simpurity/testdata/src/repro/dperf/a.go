// Package dperf is the sweep-timing/CLI layer: allowlisted, so
// wall-clock cost measurement and worker goroutines are fine here.
package dperf

import (
	"sync"
	"time"
)

func sweepTiming() time.Duration {
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(1)
	go wg.Done()
	wg.Wait()
	return time.Since(start)
}
