package replay

import "sync"

// Fixtures for barrier-parallel window execution: a bare go statement
// in a simulation package is flagged; the sanctioned fan-out carries
// an annotation arguing schedule-independence.

type kern struct{}

func (kern) RunWindow(limit float64) {}

// bareFanOut launches kernels without justifying determinism.
func bareFanOut(kernels []kern, limit float64) {
	for _, k := range kernels {
		k := k
		go k.RunWindow(limit) // want `go statement in a simulation package`
	}
}

// barrierFanOut is the sanctioned idiom: independent kernels between
// barriers, a wait before any state is merged, and the reason on
// record.
func barrierFanOut(kernels []kern, limit float64) {
	var wg sync.WaitGroup
	for _, k := range kernels {
		wg.Add(1)
		k := k
		//dperfvet:allow simpurity kernels are independent between barriers; the barrier wait and deterministic merge order make results schedule-independent
		go func() {
			defer wg.Done()
			k.RunWindow(limit)
		}()
	}
	wg.Wait()
}
