// Package analytic (fixture): the tape compiler and replay engine are
// inside the simulation purity scope — a tape evaluation must be a
// pure function of (platform, point, family), so wall-clock reads,
// ambient environment and stray goroutines are forbidden.
package analytic

import (
	"os"
	"time"
)

type tape struct {
	instrs []uint64
	outs   [4]float64
}

// replayTimed stamps the replay with wall-clock time — predictions
// would embed the machine's clock.
func replayTimed(t *tape) float64 {
	start := time.Now()   // want `wall-clock time.Now`
	_ = time.Since(start) // want `wall-clock time.Since`
	return t.outs[0]
}

// compileTuned gates guard generation on an environment variable —
// the compiled tape would depend on ambient state.
func compileTuned(t *tape) bool {
	return os.Getenv("TAPE_GUARDS") != "" // want `os.Getenv`
}

// replayAsync replays on a stray goroutine; tape replay is
// single-threaded by contract (concurrent callers hold their own
// tapes).
func replayAsync(t *tape, out chan<- float64) {
	go func() { // want `go statement`
		out <- t.outs[0]
	}()
}

// replayPure is the contract: straight-line replay, no ambient inputs.
func replayPure(t *tape, params []float64) float64 {
	acc := 0.0
	for _, in := range t.instrs {
		acc += float64(in)
	}
	return acc + t.outs[0]
}
