package netsim

import (
	"math/rand"
	"os"
	"time"
)

func impure() {
	_ = time.Now()                     // want `wall-clock time.Now`
	time.Sleep(1)                      // want `wall-clock time.Sleep`
	_ = time.Since(time.Time{})        // want `wall-clock time.Since`
	_ = rand.Intn(4)                   // want `global math/rand.Intn`
	rand.Shuffle(0, func(i, j int) {}) // want `global math/rand.Shuffle`
	_ = os.Getenv("X")                 // want `os.Getenv in a simulation package`
	_, _ = os.LookupEnv("X")           // want `os.LookupEnv in a simulation package`
	go impure()                        // want `go statement in a simulation package`
}

func pure() {
	// Seeded randomness is the sanctioned form.
	r := rand.New(rand.NewSource(42))
	_ = r.Intn(4)
	_ = r.Float64()
}

func annotated() {
	//dperfvet:allow simpurity debug-only logging gate, cannot affect results
	_ = os.Getenv("FF_DEBUG")
	//dperfvet:allow simpurity kernel token-passing goroutine, sequenced by the scheduler
	go pure()
}
