package simpurity_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/simpurity"
)

func TestSimPurity(t *testing.T) {
	linttest.Run(t, "testdata", simpurity.Analyzer,
		"repro/internal/netsim",
		"repro/internal/analytic",
		"repro/internal/replay",
		"repro/dperf",
	)
}
