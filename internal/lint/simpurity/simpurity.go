// Package simpurity forbids impure inputs inside the simulation
// packages: wall-clock reads (time.Now and friends), global math/rand
// calls, environment reads and `go` statements. Inside the simulation
// core all time must come from the DES clock, all randomness from an
// explicitly seeded *rand.Rand, and all concurrency from the kernel's
// deterministic process scheduling — otherwise predictions stop being
// a pure function of (trace, platform, spec).
//
// The sweep-timing and CLI layers (package dperf, cmd/*) are outside
// the scope: wall-clock cost reporting there is part of the UX, not of
// the simulation. Inside the scope, a deliberate impurity (e.g. the
// kernel's own token-passing process goroutines, or a debug-only env
// gate) carries //dperfvet:allow simpurity <reason>.
package simpurity

import (
	"go/ast"
	"strings"

	"repro/internal/lint/analysis"
)

// simulation is the purity scope: every package that executes between
// a trace and a prediction.
var simulation = map[string]bool{
	analysis.ModulePath + "/internal/des":       true,
	analysis.ModulePath + "/internal/netsim":    true,
	analysis.ModulePath + "/internal/analytic":  true,
	analysis.ModulePath + "/internal/replay":    true,
	analysis.ModulePath + "/internal/trace":     true,
	analysis.ModulePath + "/internal/interp":    true,
	analysis.ModulePath + "/internal/p2pdc":     true,
	analysis.ModulePath + "/internal/p2psap":    true,
	analysis.ModulePath + "/internal/costmodel": true,
}

// wallClock lists time package functions that read or wait on real
// time.
var wallClock = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

// envReads lists os package functions that read ambient state.
var envReads = map[string]bool{
	"Getenv": true, "LookupEnv": true, "Environ": true,
}

// Analyzer is the simpurity analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "simpurity",
	Doc:  "forbids wall-clock, global rand, env reads and go statements in simulation packages",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !pass.InPackages(simulation) {
		return nil
	}
	for _, f := range pass.NonTestFiles() {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if !pass.Exempted(file, n.Pos(), false) {
					pass.Reportf(n.Pos(), "go statement in a simulation package; concurrency belongs to the DES kernel's deterministic scheduling")
				}
			case *ast.CallExpr:
				path, fn := analysis.PkgFunc(pass.TypesInfo, n)
				if fn == nil {
					return true
				}
				switch {
				case path == "time" && wallClock[fn.Name()]:
					if !pass.Exempted(file, n.Pos(), false) {
						pass.Reportf(n.Pos(), "wall-clock time.%s in a simulation package; all time must come from the DES clock", fn.Name())
					}
				case (path == "math/rand" || path == "math/rand/v2") && !strings.HasPrefix(fn.Name(), "New"):
					if !pass.Exempted(file, n.Pos(), false) {
						pass.Reportf(n.Pos(), "global %s.%s in a simulation package; use an explicitly seeded *rand.Rand", path, fn.Name())
					}
				case path == "os" && envReads[fn.Name()]:
					if !pass.Exempted(file, n.Pos(), false) {
						pass.Reportf(n.Pos(), "os.%s in a simulation package; simulation results must not depend on ambient environment", fn.Name())
					}
				}
			}
			return true
		})
	}
	return nil
}
