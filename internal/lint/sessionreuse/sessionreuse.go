// Package sessionreuse enforces two documented object-lifetime
// contracts of the simulation core:
//
//   - No-copy types stay put. Structs that (transitively) carry a
//     sync lock, a sync/atomic value, or the DES kernel's by-value
//     event heap must never be copied: a copied mutex deadlocks or
//     races, and a copied event heap aliases the backing array of the
//     original, so two kernels would corrupt each other's schedule.
//     This is the stock copylocks rule extended with the repo's own
//     heap-bearing types (des.Simulation and its eventQueue).
//
//   - replay.Session is constructed once and reused. The session
//     holds the realized network — hosts, links, route caches,
//     mailboxes — and its documented contract is "create one Session
//     and reuse it"; constructing one per iteration inside a loop
//     (the sweep-worker mistake) rebuilds all of that per replay.
//     A construction that is genuinely once-per-key (memoized through
//     a cache map) carries //dperfvet:allow sessionreuse <reason>.
package sessionreuse

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"repro/internal/lint/analysis"
)

// Analyzer is the sessionreuse analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "sessionreuse",
	Doc:  "flags copies of lock- or heap-bearing structs and per-iteration replay.Session construction",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !strings.HasPrefix(pass.PackagePath(), analysis.ModulePath+"/") &&
		pass.PackagePath() != analysis.ModulePath {
		return nil
	}
	c := &checker{pass: pass, seen: make(map[types.Type]string)}
	for _, f := range pass.NonTestFiles() {
		c.file = f
		c.checkFile(f)
	}
	return nil
}

type checker struct {
	pass *analysis.Pass
	file *ast.File
	seen map[types.Type]string
}

// noCopy returns a description of the no-copy component t carries
// ("sync.Mutex", "des.eventQueue", ...) or "".
func (c *checker) noCopy(t types.Type) string {
	if t == nil {
		return ""
	}
	if why, ok := c.seen[t]; ok {
		return why
	}
	c.seen[t] = "" // break recursive types; refined below
	why := ""
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if pkg := obj.Pkg(); pkg != nil {
			switch pkg.Path() {
			case "sync":
				switch obj.Name() {
				case "Mutex", "RWMutex", "Once", "WaitGroup", "Cond", "Map", "Pool":
					why = "sync." + obj.Name()
				}
			case "sync/atomic":
				switch obj.Name() {
				case "Bool", "Int32", "Int64", "Uint32", "Uint64", "Uintptr", "Pointer", "Value":
					why = "sync/atomic." + obj.Name()
				}
			case analysis.ModulePath + "/internal/des":
				// The kernel's slice-backed event heap: copying the
				// struct aliases the heap array between two queues.
				switch obj.Name() {
				case "Simulation", "eventQueue":
					why = "des." + obj.Name()
				}
			}
		}
	}
	if why == "" {
		switch u := t.Underlying().(type) {
		case *types.Struct:
			for i := 0; i < u.NumFields() && why == ""; i++ {
				why = c.noCopy(u.Field(i).Type())
			}
		case *types.Array:
			why = c.noCopy(u.Elem())
		}
	}
	c.seen[t] = why
	return why
}

func (c *checker) typeOf(e ast.Expr) types.Type {
	if tv, ok := c.pass.TypesInfo.Types[e]; ok {
		return tv.Type
	}
	// Defining identifiers (a range statement's value variable) are in
	// Defs, not Types.
	if id, ok := e.(*ast.Ident); ok {
		if obj := c.pass.TypesInfo.Defs[id]; obj != nil {
			return obj.Type()
		}
		if obj := c.pass.TypesInfo.Uses[id]; obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// denotesValue reports whether e names an existing value (variable,
// field, element, deref) rather than constructing one: composite
// literals and function-call results are births, not copies.
func denotesValue(e ast.Expr) bool {
	switch x := analysis.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
		_ = x
		return true
	}
	return false
}

func (c *checker) reportCopy(pos token.Pos, what, why string) {
	if pass := c.pass; !pass.Exempted(c.file, pos, false) {
		pass.Reportf(pos, "%s copies a no-copy value (carries %s); use a pointer", what, why)
	}
}

func (c *checker) checkFile(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if !denotesValue(rhs) {
					continue
				}
				if i < len(n.Lhs) {
					if id, ok := analysis.Unparen(n.Lhs[i]).(*ast.Ident); ok && id.Name == "_" && len(n.Lhs) == len(n.Rhs) {
						continue // discarded, no live copy
					}
				}
				if why := c.noCopy(c.typeOf(rhs)); why != "" {
					c.reportCopy(n.Pos(), "assignment", why)
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if !denotesValue(arg) {
					continue
				}
				if why := c.noCopy(c.typeOf(arg)); why != "" {
					c.reportCopy(arg.Pos(), "call argument", why)
				}
			}
		case *ast.FuncDecl:
			c.checkFieldLists(n.Recv, n.Type)
		case *ast.FuncLit:
			c.checkFieldLists(nil, n.Type)
		case *ast.RangeStmt:
			if n.Value != nil {
				if why := c.noCopy(c.typeOf(n.Value)); why != "" {
					c.reportCopy(n.Value.Pos(), "range value", why)
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if !denotesValue(res) {
					continue
				}
				if why := c.noCopy(c.typeOf(res)); why != "" {
					c.reportCopy(res.Pos(), "return", why)
				}
			}
		}
		return true
	})
	c.checkSessionLoops(f)
}

func (c *checker) checkFieldLists(recv *ast.FieldList, ft *ast.FuncType) {
	lists := []*ast.FieldList{recv, ft.Params}
	for _, fl := range lists {
		if fl == nil {
			continue
		}
		for _, field := range fl.List {
			t := c.typeOf(field.Type)
			if t == nil {
				continue
			}
			if _, isPtr := t.Underlying().(*types.Pointer); isPtr {
				continue
			}
			if why := c.noCopy(t); why != "" {
				c.reportCopy(field.Pos(), "by-value parameter", why)
			}
		}
	}
}

// checkSessionLoops flags replay.NewSession calls lexically inside a
// loop.
func (c *checker) checkSessionLoops(f *ast.File) {
	var visit func(n ast.Node, inLoop bool)
	visit = func(n ast.Node, inLoop bool) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				if m != n {
					visit(m, true)
					return false
				}
			case *ast.RangeStmt:
				if m != n {
					visit(m, true)
					return false
				}
			case *ast.CallExpr:
				path, fn := analysis.PkgFunc(c.pass.TypesInfo, m)
				if fn != nil && fn.Name() == "NewSession" &&
					path == analysis.ModulePath+"/internal/replay" && inLoop {
					if !c.pass.Exempted(c.file, m.Pos(), false) {
						c.pass.Reportf(m.Pos(), "replay.NewSession inside a loop; a Session's documented contract is construct-once-and-reuse (hoist it, or memoize per platform and annotate //dperfvet:allow sessionreuse <reason>)")
					}
				}
			}
			return true
		})
	}
	visit(f, false)
}
