package dperf

import (
	"sync"

	"repro/internal/des"
	"repro/internal/replay"
)

type guarded struct {
	mu sync.Mutex
	n  int
}

func use(interface{}) {}

func copies(g guarded) { // want `by-value parameter copies a no-copy value \(carries sync.Mutex\)`
	h := g // want `assignment copies a no-copy value \(carries sync.Mutex\)`
	use(h) // want `call argument copies a no-copy value \(carries sync.Mutex\)`
}

func pointers(g *guarded) {
	use(g)
}

func iterate(gs []guarded) {
	for _, g := range gs { // want `range value copies a no-copy value \(carries sync.Mutex\)`
		use(&g)
	}
	for i := range gs {
		use(&gs[i])
	}
}

var global guarded

func ret() guarded {
	return global // want `return copies a no-copy value \(carries sync.Mutex\)`
}

func copySim(s *des.Simulation) {
	v := *s // want `assignment copies a no-copy value \(carries des.Simulation\)`
	use(&v)
}

func perIteration(n int) error {
	for i := 0; i < n; i++ {
		s, err := replay.NewSession(i) // want `replay.NewSession inside a loop`
		if err != nil {
			return err
		}
		if err := s.Run(); err != nil {
			return err
		}
	}
	return nil
}

func memoized(plats []int) error {
	cache := make(map[int]*replay.Session)
	for _, p := range plats {
		s, ok := cache[p]
		if !ok {
			var err error
			//dperfvet:allow sessionreuse memoized: constructed once per distinct platform
			s, err = replay.NewSession(p)
			if err != nil {
				return err
			}
			cache[p] = s
		}
		if err := s.Run(); err != nil {
			return err
		}
	}
	return nil
}

func hoisted(n int) error {
	s, err := replay.NewSession(0)
	if err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		if err := s.Run(); err != nil {
			return err
		}
	}
	return nil
}
