// Package des is a fixture stand-in for the real repro/internal/des:
// the kernel types whose by-value copies the analyzer must reject.
package des

type eventQueue struct{ a []int }

type Simulation struct {
	queue eventQueue
	now   float64
}

func New() *Simulation { return &Simulation{} }
