// Package replay is a fixture stand-in for the real
// repro/internal/replay: just enough surface for the analyzer's
// Session-reuse rule.
package replay

type Session struct{ plat int }

func NewSession(plat int) (*Session, error) { return &Session{plat: plat}, nil }

func (s *Session) Run() error { return nil }
