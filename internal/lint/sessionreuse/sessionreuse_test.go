package sessionreuse_test

import (
	"testing"

	"repro/internal/lint/linttest"
	"repro/internal/lint/sessionreuse"
)

func TestSessionReuse(t *testing.T) {
	linttest.Run(t, "testdata", sessionreuse.Analyzer,
		"repro/dperf",
	)
}
