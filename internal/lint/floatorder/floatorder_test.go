package floatorder_test

import (
	"testing"

	"repro/internal/lint/floatorder"
	"repro/internal/lint/linttest"
)

func TestFloatOrder(t *testing.T) {
	linttest.Run(t, "testdata", floatorder.Analyzer,
		"repro/internal/analytic",
		"repro/internal/netsim",
		"repro/internal/replay",
	)
}
