package netsim

// mapSum's addition sequence follows randomized map order.
func mapSum(m map[int]float64) float64 {
	var t float64
	for _, v := range m {
		t += v // want `float accumulation under map iteration order`
	}
	return t
}

// sliceSum is order-fixed: slices iterate front to back.
func sliceSum(xs []float64) float64 {
	var t float64
	for _, v := range xs {
		t += v
	}
	return t
}

// intCount commutes exactly; only floats are order-sensitive.
func intCount(m map[int]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

// capturedSum races the accumulator across goroutines.
func capturedSum(xs []float64) float64 {
	var total float64
	done := make(chan struct{})
	go func() {
		for _, v := range xs {
			total += v // want `captured across goroutines`
		}
		close(done)
	}()
	<-done
	return total
}

// partialSum keeps the accumulator goroutine-local.
func partialSum(xs []float64, out chan<- float64) {
	go func() {
		var part float64
		for _, v := range xs {
			part += v
		}
		out <- part
	}()
}

// annotated is asserted exact by its author.
func annotated(m map[int]float64) float64 {
	var t float64
	for _, v := range m {
		//dperfvet:allow floatorder values are integral and below 2^52, addition is exact
		t += v
	}
	return t
}
