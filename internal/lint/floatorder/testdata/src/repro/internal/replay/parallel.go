package replay

import "sync"

// Fixtures for the barrier-parallel window idiom: worker goroutines
// may not accumulate into shared floats; per-partition results are
// reduced in a fixed order after the barrier.

type kern struct{}

func (kern) RunWindow(limit float64) float64 { return limit }

// sharedSum races window workers into one float: the scheduler
// permutes (and races) the addition sequence.
func sharedSum(kernels []kern, limit float64) float64 {
	total := 0.0
	var wg sync.WaitGroup
	for _, k := range kernels {
		wg.Add(1)
		k := k
		go func() {
			defer wg.Done()
			total += k.RunWindow(limit) // want `float accumulation into a variable captured across goroutines`
		}()
	}
	wg.Wait()
	return total
}

// partialSums is the sanctioned idiom: each worker owns one slot, and
// the reduction after the barrier runs in partition-index order.
func partialSums(kernels []kern, limit float64) float64 {
	partial := make([]float64, len(kernels))
	var wg sync.WaitGroup
	for i, k := range kernels {
		wg.Add(1)
		i, k := i, k
		go func() {
			defer wg.Done()
			partial[i] = k.RunWindow(limit)
		}()
	}
	wg.Wait()
	total := 0.0
	for _, p := range partial {
		total += p
	}
	return total
}
