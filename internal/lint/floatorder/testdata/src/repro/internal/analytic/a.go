package analytic

// roundCost sums per-rank period costs in map iteration order.
func roundCost(perRank map[int]float64) float64 {
	var t float64
	for _, c := range perRank {
		t += c // want `float accumulation under map iteration order`
	}
	return t
}

// periodSum is order-fixed: the period slice iterates front to back.
func periodSum(periods []float64) float64 {
	var t float64
	for _, p := range periods {
		t += p
	}
	return t
}

// roundTally commutes exactly; only floats are order-sensitive.
func roundTally(perRank map[int]int64) int64 {
	var n int64
	for _, v := range perRank {
		n += v
	}
	return n
}

// sharedDeadline races the accumulator across goroutines — the
// analytic tier is single-threaded by contract.
func sharedDeadline(costs []float64) float64 {
	var deadline float64
	done := make(chan struct{})
	go func() {
		for _, c := range costs {
			deadline += c // want `captured across goroutines`
		}
		close(done)
	}()
	<-done
	return deadline
}

// localDeadline keeps the accumulator goroutine-local.
func localDeadline(costs []float64, out chan<- float64) {
	go func() {
		var d float64
		for _, c := range costs {
			d += c
		}
		out <- d
	}()
}

// annotated is asserted exact by its author.
func annotated(perRank map[int]float64) float64 {
	var t float64
	for _, c := range perRank {
		//dperfvet:allow floatorder costs are integral nanosecond counts below 2^52, addition is exact
		t += c
	}
	return t
}
