package analytic

// Tape-compiler shapes: the recorder's const pool and CSE tables are
// maps, and the replay engine runs lane-major slices. Accumulating
// tape floats in map order is the same byte-identity bug as in the
// costing paths.

// constPoolSum folds the recorder's constant pool in map iteration
// order — the folded value would differ run to run.
func constPoolSum(consts map[uint64]float64) float64 {
	var t float64
	for _, c := range consts {
		t += c // want `float accumulation under map iteration order`
	}
	return t
}

// replayLanes is the batch replay shape: lane-major register slices,
// iteration order fixed by the instruction stream.
func replayLanes(regs []float64, lanes int) float64 {
	var t float64
	for l := 0; l < lanes; l++ {
		t += regs[l]
	}
	return t
}

// recordAsync races tape recording against the caller — replay must
// stay single-goroutine per tape.
func recordAsync(costs []float64) float64 {
	var total float64
	done := make(chan struct{})
	go func() {
		for _, c := range costs {
			total += c // want `captured across goroutines`
		}
		close(done)
	}()
	<-done
	return total
}
