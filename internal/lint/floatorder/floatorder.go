// Package floatorder flags order-sensitive floating-point reductions
// in the costing paths. Float addition is not associative, and the
// repo's fast-forward engine promises bit-identical results — its
// closed-form jump performs the *same sequence* of float64 additions a
// full simulation would (des.AdvanceBase iterates, never multiplies).
// That guarantee dies wherever accumulation order is left to chance:
//
//   - `+=` into a float inside a range-over-map body, where Go's
//     randomized iteration order permutes the addition sequence;
//   - `+=` into a float captured by a goroutine's function literal,
//     where the scheduler permutes it (and races it).
//
// Sorting the keys (or restructuring to a slice) fixes the first;
// per-worker partial sums reduced in a fixed order fix the second.
// A reduction proven exact regardless of order carries
// //dperfvet:allow floatorder <reason>.
package floatorder

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/lint/analysis"
)

// costing is the scope: every package whose float arithmetic reaches a
// prediction.
var costing = map[string]bool{
	analysis.ModulePath + "/internal/des":       true,
	analysis.ModulePath + "/internal/netsim":    true,
	analysis.ModulePath + "/internal/analytic":  true,
	analysis.ModulePath + "/internal/replay":    true,
	analysis.ModulePath + "/internal/trace":     true,
	analysis.ModulePath + "/internal/interp":    true,
	analysis.ModulePath + "/internal/costmodel": true,
	analysis.ModulePath + "/dperf":              true,
}

// Analyzer is the floatorder analyzer.
var Analyzer = &analysis.Analyzer{
	Name: "floatorder",
	Doc:  "flags order-sensitive float accumulation (map iteration, cross-goroutine captures) in costing paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !pass.InPackages(costing) {
		return nil
	}
	for _, f := range pass.NonTestFiles() {
		file := f
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				if analysis.IsMapRange(pass.TypesInfo, n) {
					checkMapBody(pass, file, n.Body)
				}
			case *ast.GoStmt:
				if lit, ok := analysis.Unparen(n.Call.Fun).(*ast.FuncLit); ok {
					checkGoroutineBody(pass, file, lit)
				}
			}
			return true
		})
	}
	return nil
}

// compoundFloat reports whether as is an arithmetic op-assignment with
// a float-typed target.
func compoundFloat(info *types.Info, as *ast.AssignStmt) bool {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return false
	}
	for _, lhs := range as.Lhs {
		if tv, ok := info.Types[lhs]; ok && tv.Type != nil && analysis.IsFloat(tv.Type) {
			return true
		}
	}
	return false
}

// checkMapBody flags float op-assignments anywhere under a map-range
// body.
func checkMapBody(pass *analysis.Pass, file *ast.File, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !compoundFloat(pass.TypesInfo, as) {
			return true
		}
		if !pass.Exempted(file, as.Pos(), false) {
			pass.Reportf(as.Pos(), "float accumulation under map iteration order; the addition sequence differs run to run — iterate sorted keys")
		}
		return true
	})
}

// checkGoroutineBody flags float op-assignments to variables the
// goroutine's function literal captures from an enclosing scope.
func checkGoroutineBody(pass *analysis.Pass, file *ast.File, lit *ast.FuncLit) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || !compoundFloat(pass.TypesInfo, as) {
			return true
		}
		captured := false
		for _, lhs := range as.Lhs {
			id := analysis.RootIdent(lhs)
			if id == nil {
				continue
			}
			obj := pass.TypesInfo.Uses[id]
			if obj == nil {
				continue
			}
			if obj.Pos() < lit.Pos() || obj.Pos() > lit.End() {
				captured = true
			}
		}
		if captured && !pass.Exempted(file, as.Pos(), false) {
			pass.Reportf(as.Pos(), "float accumulation into a variable captured across goroutines; scheduler order permutes the sum — reduce per-worker partials in a fixed order")
		}
		return true
	})
}
