// Package lint assembles the dperfvet analyzer suite: five static
// checks that turn the repo's dynamically-enforced determinism and
// simulation-purity invariants (byte-identical predictions at any
// worker count, bit-identical fast-forward, untruncated containers)
// into compile-time rules, the way go vet's loopclosure/copylocks
// encode Go-wide ones.
package lint

import (
	"repro/internal/lint/analysis"
	"repro/internal/lint/errclose"
	"repro/internal/lint/floatorder"
	"repro/internal/lint/maporder"
	"repro/internal/lint/sessionreuse"
	"repro/internal/lint/simpurity"
)

// Analyzers returns the full dperfvet suite, in reporting order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		simpurity.Analyzer,
		sessionreuse.Analyzer,
		floatorder.Analyzer,
		errclose.Analyzer,
	}
}
