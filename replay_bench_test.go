package repro

import (
	"testing"

	"repro/dperf"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/trace"
)

// replayBenchSource generates the paper-scale obstacle trace set
// (N=1200, 120 rounds × 15 sweeps) at 8 ranks — the configuration of
// the fast-forward acceptance gate — as a shared folded source.
func replayBenchSource(b *testing.B) (trace.FoldedSource, replay.Spec) {
	b.Helper()
	const ranks = 8
	w := dperf.DefaultObstacleWorkload()
	a, err := dperf.New(w, dperf.WithRanks(ranks)).Analyze()
	if err != nil {
		b.Fatal(err)
	}
	ts, err := a.Traces()
	if err != nil {
		b.Fatal(err)
	}
	plat, err := platform.ForKind(platform.KindCluster, ranks)
	if err != nil {
		b.Fatal(err)
	}
	return trace.FoldedSource(ts.Folded()), replay.Spec{
		Platform:     plat,
		Hosts:        plat.Hosts()[:ranks],
		Submitter:    plat.Frontend,
		Scheme:       dperf.Synchronous,
		ScatterBytes: ts.ScatterBytes,
		GatherBytes:  ts.GatherBytes,
	}
}

// BenchmarkReplayFastForward is the headline benchmark of
// BENCH_replay.json: the paper-scale folded obstacle replay with the
// steady-state fast-forward off (every round simulated), in verify
// mode (epoch-rebased rounds, all simulated) and on (steady-state
// rounds costed in closed form). The off/on ratio is the wall-clock
// speedup of the engine; on-mode results are bit-identical to verify
// mode.
func BenchmarkReplayFastForward(b *testing.B) {
	src, spec := replayBenchSource(b)
	run := func(b *testing.B, mode replay.FFMode) {
		s, err := replay.NewSession(spec.Platform)
		if err != nil {
			b.Fatal(err)
		}
		ms := spec
		ms.FastForward = mode
		var last *replay.Result
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := s.RunSource(ms, src)
			if err != nil {
				b.Fatal(err)
			}
			last = res
		}
		b.ReportMetric(last.PredictedSeconds, "vsec-predicted")
		if last.FF.RoundsSimulated+last.FF.RoundsFastForwarded > 0 {
			b.ReportMetric(float64(last.FF.RoundsFastForwarded), "rounds-skipped")
		}
	}
	b.Run("off", func(b *testing.B) { run(b, replay.FFOff) })
	b.Run("verify", func(b *testing.B) { run(b, replay.FFVerify) })
	b.Run("on", func(b *testing.B) { run(b, replay.FFOn) })
}
