package repro

import (
	"testing"

	"repro/dperf"
	"repro/internal/p2psap"
	"repro/internal/platform"
	"repro/internal/replay"
	"repro/internal/trace"
)

// traceBenchSet generates the obstacle trace set once (folded) at a
// realistic round count.
func traceBenchSet(b *testing.B, ranks int) *dperf.TraceSet {
	b.Helper()
	w := dperf.ObstacleWorkload{N: 600, Rounds: 120, Sweeps: 4, BenchN: 24}
	a, err := dperf.New(w, dperf.WithRanks(ranks)).Analyze()
	if err != nil {
		b.Fatal(err)
	}
	ts, err := a.Traces()
	if err != nil {
		b.Fatal(err)
	}
	return ts
}

func traceBenchSpec(b *testing.B, ranks int) replay.Spec {
	b.Helper()
	plat, err := platform.ForKind(platform.KindCluster, ranks)
	if err != nil {
		b.Fatal(err)
	}
	return replay.Spec{
		Platform:  plat,
		Hosts:     plat.Hosts()[:ranks],
		Submitter: plat.Frontend,
		Scheme:    p2psap.Synchronous,
	}
}

// BenchmarkTraceReplay compares replaying the obstacle trace set from
// its flat record slices against the shared folded source: same
// simulation, same results, O(compressed) trace memory. ns/record
// and allocs/record are the headline metrics of BENCH_trace.json.
func BenchmarkTraceReplay(b *testing.B) {
	const ranks = 4
	ts := traceBenchSet(b, ranks)
	spec := traceBenchSpec(b, ranks)
	flat, err := ts.Flat()
	if err != nil {
		b.Fatal(err)
	}
	var records int64
	for _, tr := range flat {
		records += int64(len(tr.Records))
	}
	run := func(b *testing.B, src trace.Source) {
		s, err := replay.NewSession(spec.Platform)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.RunSource(spec, src); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(records), "ns/record")
	}
	b.Run("flat", func(b *testing.B) { run(b, trace.SliceSource(flat)) })
	b.Run("folded", func(b *testing.B) { run(b, trace.FoldedSource(ts.Folded())) })
}

// BenchmarkTraceReplayComputeRuns isolates the compute-run fast path:
// a trace dominated by a long homogeneous compute run replays as one
// kernel event instead of one per record.
func BenchmarkTraceReplayComputeRuns(b *testing.B) {
	const runLen = 50000
	mk := func(rank, peer int) *trace.Folded {
		return &trace.Folded{Rank: rank, Of: 2, Ops: []trace.Op{
			{Count: runLen, Rec: trace.Record{Kind: trace.KindCompute, NS: 1000}},
			{Count: 1, Rec: trace.Record{Kind: trace.KindSend, Peer: peer, Bytes: 64}},
			{Count: 1, Rec: trace.Record{Kind: trace.KindRecv, Peer: peer, Bytes: 64}},
		}}
	}
	folded := trace.FoldedSource{mk(0, 1), mk(1, 0)}
	spec := traceBenchSpec(b, 2)
	run := func(b *testing.B, src trace.Source) {
		s, err := replay.NewSession(spec.Platform)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := s.RunSource(spec, src); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(2*runLen), "ns/record")
	}
	b.Run("aggregated", func(b *testing.B) { run(b, folded) })
	b.Run("per-record", func(b *testing.B) { run(b, perRecordSource{folded}) })
}

// perRecordSource forces the per-record slow path (the pre-refactor
// replay shape) for comparison.
type perRecordSource struct{ src trace.Source }

func (s perRecordSource) Ranks() int { return s.src.Ranks() }

func (s perRecordSource) Cursor(rank int) trace.Cursor {
	return &perRecordCursor{cur: s.src.Cursor(rank)}
}

type perRecordCursor struct {
	cur  trace.Cursor
	rec  trace.Record
	left int
}

func (c *perRecordCursor) Next() bool {
	if c.left > 0 {
		c.left--
		return true
	}
	if !c.cur.Next() {
		return false
	}
	r, n := c.cur.Run()
	c.rec, c.left = r, n-1
	return true
}

func (c *perRecordCursor) Run() (trace.Record, int) { return c.rec, 1 }

// BenchmarkTraceSetEncode measures whole-set serialization cost and
// size for the JSON and binary formats.
func BenchmarkTraceSetEncode(b *testing.B) {
	ts := traceBenchSet(b, 4)
	if _, err := ts.Flat(); err != nil {
		b.Fatal(err)
	}
	b.Run("json", func(b *testing.B) {
		b.ReportAllocs()
		var n int64
		for i := 0; i < b.N; i++ {
			var cw countWriter
			if err := ts.WriteJSON(&cw); err != nil {
				b.Fatal(err)
			}
			n = cw.n
		}
		b.ReportMetric(float64(n), "bytes")
	})
	b.Run("binary", func(b *testing.B) {
		b.ReportAllocs()
		var n int64
		for i := 0; i < b.N; i++ {
			var cw countWriter
			if err := ts.WriteBinary(&cw); err != nil {
				b.Fatal(err)
			}
			n = cw.n
		}
		b.ReportMetric(float64(n), "bytes")
	})
}

type countWriter struct{ n int64 }

func (c *countWriter) Write(p []byte) (int, error) {
	c.n += int64(len(p))
	return len(p), nil
}

// BenchmarkTraceGeneration measures the generation stage itself —
// folded emission keeps memory O(patterns) instead of O(iterations).
func BenchmarkTraceGeneration(b *testing.B) {
	w := dperf.ObstacleWorkload{N: 600, Rounds: 120, Sweeps: 4, BenchN: 24}
	a, err := dperf.New(w, dperf.WithRanks(4)).Analyze()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := a.Traces(); err != nil {
			b.Fatal(err)
		}
	}
}
